// Durability of server-run campaign sessions (DESIGN.md §4.6): a session
// journaled through the serve protocol can crash at sampled append
// boundaries and resume — on a different server, at a different worker
// count, even after the source snapshot has mutated — into the exact solo
// digest. The journal header is self-contained (campaign config + overlay
// at capture), which is what every assertion here leans on.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "http/message.h"
#include "measure/journal.h"
#include "report/json.h"
#include "scenarios/campaign.h"
#include "serve/server.h"

namespace {

using namespace urlf;
using measure::CampaignJournal;
using report::Json;
namespace fs = std::filesystem;

http::Request post(const std::string& path, const Json& body) {
  http::Request request;
  request.method = "POST";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  request.headers.set("Content-Type", "application/json");
  request.body = body.dump();
  return request;
}

Json campaignBody(const std::string& journal = "", bool resume = false,
                  int crashAfter = 0, std::size_t classifyThreads = 0) {
  Json body = Json::object();
  body["kind"] = Json::string("campaign");
  body["snapshot"] = Json::string("paper");
  if (!journal.empty()) body["journal"] = Json::string(journal);
  if (resume) body["resume"] = Json::boolean(true);
  if (crashAfter > 0) body["crash_after"] = Json::number(std::int64_t{crashAfter});
  if (classifyThreads != 0)
    body["classify_threads"] =
        Json::number(static_cast<std::int64_t>(classifyThreads));
  return body;
}

std::string stringField(const http::Response& response,
                        const std::string& field) {
  const auto body = Json::parse(response.body);
  if (!body) return "<unparseable>";
  const auto* value = body->find(field);
  if (value == nullptr || !value->asString()) return "<missing>";
  return *value->asString();
}

double numberField(const http::Response& response, const std::string& field) {
  const auto body = Json::parse(response.body);
  if (!body) return -1;
  const auto* value = body->find(field);
  if (value == nullptr || !value->asNumber()) return -1;
  return *value->asNumber();
}

class ServeRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("urlf_serve_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ServeRecoveryTest, CrashAtSampledBoundariesResumesToSoloDigest) {
  const auto soloDigest =
      scenarios::runPaperCampaign(scenarios::CampaignOptions{}).digestHex();

  // Uninterrupted journaled session: baseline digest and append count.
  serve::CampaignServer origin({.workers = 2});
  origin.addSnapshot("paper");
  const fs::path fullPath = dir_ / "full.journal";
  const auto full = origin.handle(
      post("/v1/session", campaignBody(fullPath.string())));
  ASSERT_EQ(full.statusCode, 200) << full.body;
  EXPECT_EQ(stringField(full, "digest"), soloDigest);
  const int appends = static_cast<int>(numberField(full, "journal_appends"));
  ASSERT_GT(appends, 10);

  // Resume happens on a server with a DIFFERENT worker count and classify
  // fan-out, and WITHOUT the snapshot registered at all — the journal
  // header alone must rebuild the world.
  serve::CampaignServer fresh({.workers = 4});

  const std::vector<int> sample{1, appends / 4, appends / 2, appends - 1};
  int crashes = 0;
  for (const int crashAfter : sample) {
    const fs::path path =
        dir_ / ("crash_" + std::to_string(crashAfter) + ".journal");

    const auto crashed = origin.handle(post(
        "/v1/session", campaignBody(path.string(), false, crashAfter)));
    ASSERT_EQ(crashed.statusCode, 500) << crashed.body;
    EXPECT_EQ(stringField(crashed, "error"), "simulated-crash");
    ++crashes;

    const auto resumed = fresh.handle(post(
        "/v1/session",
        campaignBody(path.string(), true, 0, /*classifyThreads=*/3)));
    ASSERT_EQ(resumed.statusCode, 200)
        << "crash_after=" << crashAfter << ": " << resumed.body;
    EXPECT_EQ(stringField(resumed, "digest"), soloDigest)
        << "crash_after=" << crashAfter;
    const auto body = Json::parse(resumed.body);
    ASSERT_TRUE(body.has_value());
    EXPECT_TRUE(*body->find("resumed")->asBool());
  }
  EXPECT_EQ(origin.stats().crashes, static_cast<std::uint64_t>(crashes));
  EXPECT_EQ(fresh.stats().campaignsCompleted,
            static_cast<std::uint64_t>(sample.size()));
}

TEST_F(ServeRecoveryTest, ResumeSurvivesSnapshotMutation) {
  const auto soloDigest =
      scenarios::runPaperCampaign(scenarios::CampaignOptions{}).digestHex();

  serve::CampaignServer server({.workers = 2});
  server.addSnapshot("paper");
  const fs::path path = dir_ / "mutated.journal";

  const auto crashed = server.handle(
      post("/v1/session", campaignBody(path.string(), false, 5)));
  ASSERT_EQ(crashed.statusCode, 500) << crashed.body;

  // The snapshot moves to epoch 1 while the crashed session is down.
  Json edit = Json::object();
  edit["snapshot"] = Json::string("paper");
  edit["product"] = Json::string("McAfee SmartFilter");
  edit["host"] = Json::string("humanrightsmonitor.org");
  edit["category"] = Json::string("Pornography");
  ASSERT_EQ(server.handle(post("/v1/admin/recategorize", edit)).statusCode,
            200);

  // Resume replays the journal's OWN epoch-0 capture, not the snapshot's
  // current state: the digest is the untouched solo digest.
  const auto resumed = server.handle(
      post("/v1/session", campaignBody(path.string(), true)));
  ASSERT_EQ(resumed.statusCode, 200) << resumed.body;
  EXPECT_EQ(stringField(resumed, "digest"), soloDigest);
  EXPECT_EQ(numberField(resumed, "epoch"), 0);
}

TEST_F(ServeRecoveryTest, HeaderWorldMismatchIsDivergence409) {
  // Craft a journal whose header claims an outage-ridden campaign config
  // but whose records came from the default config. Resume rebuilds the
  // header's world, re-executes, and must refuse with 409 at the first
  // record that does not match — never silently blend the two runs.
  scenarios::CampaignOptions liar;
  liar.healthEnabled = true;
  liar.breaker.failureThreshold = 5;
  liar.breaker.cooldownHours = 24;
  liar.outages.vantageDeaths.push_back({"field-nournet", {2013, 5, 8}});

  Json header = Json::object();
  header["type"] = Json::string("serve-session");
  header["version"] = Json::number(std::int64_t{1});
  header["snapshot"] = Json::string("paper");
  header["epoch"] = Json::number(std::int64_t{0});
  header["campaign"] = liar.headerJson();
  header["overlay"] = Json::array();

  const fs::path path = dir_ / "divergent.journal";
  {
    auto journal = CampaignJournal::start(path.string(), header);
    (void)scenarios::runPaperCampaign(scenarios::CampaignOptions{}, &journal);
  }

  serve::CampaignServer server({.workers = 1});
  const auto resumed = server.handle(
      post("/v1/session", campaignBody(path.string(), true)));
  EXPECT_EQ(resumed.statusCode, 409) << resumed.body;
  EXPECT_EQ(stringField(resumed, "error"), "journal-divergence");
  EXPECT_EQ(server.stats().divergences, 1u);
}

TEST_F(ServeRecoveryTest, ResumeRejectsForeignAndMissingJournals) {
  serve::CampaignServer server({.workers = 1});
  server.addSnapshot("paper");

  // Missing file.
  const auto missing = server.handle(post(
      "/v1/session", campaignBody((dir_ / "absent.journal").string(), true)));
  EXPECT_EQ(missing.statusCode, 400) << missing.body;

  // A journal from the standalone campaign runner (not a serve-session
  // header) is refused rather than misinterpreted.
  const fs::path foreign = dir_ / "foreign.journal";
  {
    scenarios::CampaignOptions options;
    auto journal = CampaignJournal::start(foreign.string(),
                                          options.headerJson());
    (void)scenarios::runPaperCampaign(options, &journal);
  }
  const auto rejected = server.handle(
      post("/v1/session", campaignBody(foreign.string(), true)));
  EXPECT_EQ(rejected.statusCode, 400) << rejected.body;
  EXPECT_EQ(server.stats().badRequests, 2u);
}

}  // namespace
