// Journal corruption fuzz suite (DESIGN.md §4.4): CampaignJournal::open /
// fromText must never throw on damaged input. Any truncation or bit flip
// either recovers the longest valid record prefix or fails with a one-line
// reason (missing/empty/corrupt header) — and recovery is idempotent: a
// second open of a repaired file drops nothing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "http/message.h"
#include "measure/client.h"
#include "measure/journal.h"
#include "measure/session.h"
#include "report/json.h"
#include "simnet/transport.h"
#include "util/clock.h"

namespace {

using namespace urlf;
using measure::CampaignJournal;
namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Builds one realistic journal (varied record shapes, written through the
/// real append path) and exposes its text + boundary offsets.
class JournalCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("urlf_corrupt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);

    report::Json header = report::Json::object();
    header["type"] = report::Json::string("campaign-config");
    header["seed"] = report::Json::string("20131023");

    const fs::path path = dir_ / "seed.journal";
    auto journal = CampaignJournal::start(path.string(), header);
    for (int i = 0; i < 10; ++i) {
      auto event = CampaignJournal::event("verdict", util::SimTime{i * 7});
      event["url"] = report::Json::string("http://site-" + std::to_string(i) +
                                          ".example/path?q=" +
                                          std::to_string(i * i));
      event["verdict"] =
          report::Json::string(i % 3 == 0 ? "blocked" : "accessible");
      (void)journal.sync(event);
      events_.push_back(std::move(event));
    }
    text_ = readFile(path);
    boundaries_ = CampaignJournal::recordBoundaries(text_);
    ASSERT_EQ(boundaries_.size(), events_.size() + 1);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Number of complete event records in a prefix of length `len`:
  /// boundaries_[k] is the offset just after the kth event record.
  [[nodiscard]] std::size_t completeRecords(std::size_t len) const {
    std::size_t count = 0;
    for (std::size_t k = 1; k < boundaries_.size(); ++k)
      if (boundaries_[k] <= len) count = k;
    return count;
  }

  fs::path dir_;
  std::string text_;
  std::vector<std::size_t> boundaries_;
  std::vector<report::Json> events_;
};

TEST_F(JournalCorruptionTest, EveryTruncationRecoversTheValidPrefix) {
  for (std::size_t len = 0; len <= text_.size(); ++len) {
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    util::Expected<CampaignJournal> opened =
        CampaignJournal::fromText(std::string_view(text_).substr(0, len));

    if (len < boundaries_[0]) {
      // Not even a whole header line survived: resume must refuse.
      EXPECT_FALSE(opened.ok());
      continue;
    }
    ASSERT_TRUE(opened.ok()) << opened.error();
    const std::size_t want = completeRecords(len);
    EXPECT_EQ(opened->recordCount(), want);
    // The recovered records are a prefix of the originals, byte-for-byte.
    for (std::size_t i = 0; i < want; ++i)
      EXPECT_EQ(opened->records()[i].dump(0), events_[i].dump(0));
    EXPECT_EQ(opened->stats().droppedBytes, len - boundaries_[want]);
  }
}

TEST_F(JournalCorruptionTest, EveryBitFlipStopsAtTheDamagedLine) {
  // Flip one bit at a time (cycling through bit positions) across the whole
  // file. The checksum must reject the damaged line and recovery must keep
  // exactly the records before it.
  for (std::size_t pos = 0; pos < text_.size(); ++pos) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    std::string corrupted = text_;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1u << (pos % 8)));

    util::Expected<CampaignJournal> opened =
        CampaignJournal::fromText(corrupted);
    if (pos < boundaries_[0]) {
      // Damage inside the header line: the journal is unusable.
      EXPECT_FALSE(opened.ok());
      continue;
    }
    // Damage inside event record k: records 0..k-1 survive, k and
    // everything after are dropped (scan stops at the first invalid line).
    std::size_t damaged = 0;
    while (damaged + 1 < boundaries_.size() && boundaries_[damaged + 1] <= pos)
      ++damaged;
    ASSERT_TRUE(opened.ok()) << opened.error();
    EXPECT_EQ(opened->recordCount(), damaged);
    EXPECT_TRUE(opened->stats().tornTail);
  }
}

TEST_F(JournalCorruptionTest, OpenTruncatesTornTailOnDiskIdempotently) {
  // A torn tail (half an appended record) is physically removed on open so
  // a subsequent append never interleaves with garbage.
  const std::size_t torn =
      boundaries_[6] + (boundaries_[7] - boundaries_[6]) / 2;
  const fs::path path = dir_ / "torn.journal";
  writeFile(path, std::string_view(text_).substr(0, torn));

  auto first = CampaignJournal::open(path.string());
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->recordCount(), 6u);
  EXPECT_TRUE(first->stats().tornTail);
  EXPECT_EQ(first->stats().droppedBytes, torn - boundaries_[6]);
  EXPECT_EQ(fs::file_size(path), boundaries_[6]);

  // Second open: the repair already happened, nothing further is dropped.
  auto second = CampaignJournal::open(path.string());
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->recordCount(), 6u);
  EXPECT_FALSE(second->stats().tornTail);
  EXPECT_EQ(second->stats().droppedBytes, 0u);
}

TEST_F(JournalCorruptionTest, ReplayAfterRecoveryIsIdempotent) {
  auto opened = CampaignJournal::fromText(text_);
  ASSERT_TRUE(opened.ok()) << opened.error();
  ASSERT_EQ(opened->replayRemaining(), events_.size());

  // Re-feeding the same event stream replays without appending...
  for (const auto& event : events_)
    EXPECT_EQ(opened.value().sync(event), CampaignJournal::SyncAction::kReplayed);
  EXPECT_EQ(opened->appendCount(), 0u);
  EXPECT_EQ(opened->replayRemaining(), 0u);

  // ...and the first genuinely new event switches to appending.
  auto fresh = CampaignJournal::event("case-end", util::SimTime{999});
  EXPECT_EQ(opened.value().sync(fresh), CampaignJournal::SyncAction::kAppended);
  EXPECT_EQ(opened->recordCount(), events_.size() + 1);
}

TEST_F(JournalCorruptionTest, DivergentReplayThrowsWithBothRecords) {
  auto opened = CampaignJournal::fromText(text_);
  ASSERT_TRUE(opened.ok()) << opened.error();
  auto wrong = CampaignJournal::event("verdict", util::SimTime{0});
  wrong["url"] = report::Json::string("http://not-the-journaled-site.example/");
  EXPECT_THROW((void)opened.value().sync(wrong), measure::JournalDivergence);
}

TEST(CauseRoundTrip, InjectedAndFilterTimeoutsStayDistinctThroughJournal) {
  // Regression: an injected transient timeout (FaultPlan) and a
  // packet-filter null-route produce the *same* client-visible shape —
  // kTimeout outcome, "timeout" signature. Before FailureCause existed the
  // round-trip conflated them and a resumed campaign could misattribute
  // fault noise as censorship. Both the session serializer and the journal
  // must keep the ground-truth cause distinct.
  measure::UrlTestResult transient;
  transient.url = "http://flaky.example/";
  transient.verdict = measure::Verdict::kInconclusive;
  transient.field.outcome = simnet::FetchOutcome::kTimeout;
  transient.field.signature = simnet::FailureSignature::kTimeout;
  transient.field.cause = simnet::FailureCause::kFault;
  transient.field.injectedFault = simnet::FaultKind::kTimeout;
  transient.lab.outcome = simnet::FetchOutcome::kOk;
  transient.lab.response = http::Response{};

  measure::UrlTestResult filtered = transient;
  filtered.url = "http://nullrouted.example/";
  filtered.verdict = measure::Verdict::kBlockedOther;
  filtered.field.cause = simnet::FailureCause::kPacketFilter;
  filtered.field.injectedFault = simnet::FaultKind::kNone;

  // Session round-trip.
  const auto exported =
      measure::exportSession({transient, filtered}, /*indent=*/0);
  const auto imported = measure::importSession(exported);
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->size(), 2u);
  EXPECT_EQ((*imported)[0].field.cause, simnet::FailureCause::kFault);
  EXPECT_EQ((*imported)[0].field.injectedFault, simnet::FaultKind::kTimeout);
  EXPECT_EQ((*imported)[1].field.cause, simnet::FailureCause::kPacketFilter);
  EXPECT_EQ((*imported)[1].field.injectedFault, simnet::FaultKind::kNone);
  // Same wire shape on both sides — only the cause separates them.
  EXPECT_EQ((*imported)[0].field.signature, (*imported)[1].field.signature);

  // Journal round-trip: embed both as verdict events, re-open from text.
  report::Json header = report::Json::object();
  header["type"] = report::Json::string("campaign-config");
  const fs::path path =
      fs::temp_directory_path() /
      ("urlf_cause_" + std::to_string(::getpid()) + ".journal");
  {
    auto journal = CampaignJournal::start(path.string(), header);
    for (const auto* result : {&transient, &filtered}) {
      auto event = CampaignJournal::event("verdict", util::SimTime{0});
      event["url"] = report::Json::string(result->url);
      event["signature"] =
          report::Json::string(simnet::toString(result->field.signature));
      event["cause"] =
          report::Json::string(simnet::toString(result->field.cause));
      (void)journal.sync(event);
    }
  }
  const std::string text = readFile(path);
  fs::remove(path);
  auto reopened = CampaignJournal::fromText(text);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  ASSERT_EQ(reopened->recordCount(), 2u);
  const auto& records = reopened->records();
  EXPECT_EQ(*records[0].find("cause")->asString(), "fault");
  EXPECT_EQ(*records[1].find("cause")->asString(), "packet-filter");
  EXPECT_EQ(*records[0].find("signature")->asString(),
            *records[1].find("signature")->asString());
}

TEST(JournalOpenErrors, MissingEmptyAndHeaderlessAllFailOneLine) {
  const auto missing = CampaignJournal::open("/nonexistent/never.journal");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("does not exist"), std::string::npos);

  const auto empty = CampaignJournal::fromText("");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error().find("empty"), std::string::npos);

  const auto garbage = CampaignJournal::fromText("this is not a journal\n");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error().find("header"), std::string::npos);

  // Every error is a single line — the CLI prints it verbatim.
  for (const auto* error :
       {&missing.error(), &empty.error(), &garbage.error()})
    EXPECT_EQ(error->find('\n'), std::string::npos);
}

}  // namespace
