// Equivalence properties of the indexed scan→identify pipeline:
//  - indexed BannerIndex::search/searchAll return exactly the reference
//    (linear-scan) result sets over randomized worlds and randomized
//    queries, including country facets, mixed-case keywords, keywords
//    spanning token boundaries, and punctuation-only keywords;
//  - parallel crawl and parallel identifyAll are byte-identical to their
//    serial counterparts for the same seed.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "net/cctld.h"
#include "scan/serialize.h"
#include "scenarios/random_world.h"
#include "util/rng.h"
#include "util/strings.h"

namespace urlf::scan {
namespace {

using scenarios::RandomWorld;
using scenarios::RandomWorldConfig;

RandomWorldConfig mediumWorld() {
  RandomWorldConfig config;
  config.countries = 12;
  config.decoys = 24;
  config.contentSites = 12;
  return config;
}

/// Random keyword drawn from real banner text so it can straddle token
/// boundaries ("r\n<title>Net"), with random case flips.
std::string keywordFromBanner(util::Rng& rng, const BannerIndex& index) {
  const auto& records = index.records();
  const auto& text = records[rng.index(records.size())].searchableText();
  if (text.empty()) return "x";
  const std::size_t len = 1 + rng.index(18);
  const std::size_t start = rng.index(text.size());
  std::string keyword = text.substr(start, len);
  for (auto& c : keyword)
    if (rng.chance(0.5)) c = static_cast<char>(std::toupper(
        static_cast<unsigned char>(c)));
  return keyword;
}

std::vector<Query> randomQueries(util::Rng& rng, const BannerIndex& index,
                                 int count) {
  const std::vector<std::string> fixed = {
      "proxysg",       "cfru=",          "mcafee web gateway",
      "url blocked",   "netsweeper",     "webadmin",
      "webadmin/deny", "8080/webadmin/", "blockpage.cgi",
      "gateway websense",
      // pathological keywords: empty, punctuation-only, whitespace
      "", "=", "/", " ", "\r\n", "no-such-keyword-anywhere"};

  std::vector<Query> out;
  for (int i = 0; i < count; ++i) {
    Query query;
    if (rng.chance(0.4)) {
      query.keyword = fixed[rng.index(fixed.size())];
    } else {
      query.keyword = keywordFromBanner(rng, index);
    }
    const double facet = rng.uniform01();
    if (facet < 0.4) {
      // a country actually present in the index (random case)
      const auto& records = index.records();
      auto country = records[rng.index(records.size())].countryAlpha2;
      if (!country.empty() && rng.chance(0.5))
        country = util::toLower(country);
      query.countryAlpha2 = country;
    } else if (facet < 0.55) {
      query.countryAlpha2 = "ZZ";  // absent country
    }
    out.push_back(std::move(query));
  }
  return out;
}

std::vector<const BannerRecord*> searchInMode(BannerIndex& index,
                                              BannerIndex::SearchMode mode,
                                              const Query& query) {
  index.setSearchMode(mode);
  return index.search(query);
}

TEST(ScanIndexProperty, IndexedSearchMatchesReferenceOnRandomWorlds) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    RandomWorld world(seed, mediumWorld());
    const auto geo = world.world().buildGeoDatabase();
    BannerIndex index;
    index.crawl(world.world(), geo);
    ASSERT_GT(index.size(), 0u);

    util::Rng rng(seed * 1000 + 7);
    const auto queries = randomQueries(rng, index, 200);
    for (const auto& query : queries) {
      const auto indexed =
          searchInMode(index, BannerIndex::SearchMode::kIndexed, query);
      const auto reference =
          searchInMode(index, BannerIndex::SearchMode::kReference, query);
      ASSERT_EQ(indexed, reference)
          << "seed=" << seed << " keyword=\"" << query.keyword << "\" country="
          << query.countryAlpha2.value_or("(none)");
    }
  }
}

TEST(ScanIndexProperty, SearchAllMatchesReferenceOnRandomQueries) {
  RandomWorld world(77, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);

  util::Rng rng(404);
  const auto queries = randomQueries(rng, index, 300);

  index.setSearchMode(BannerIndex::SearchMode::kIndexed);
  const auto indexed = index.searchAll(queries);
  index.setSearchMode(BannerIndex::SearchMode::kReference);
  const auto reference = index.searchAll(queries);
  EXPECT_EQ(indexed, reference);
}

TEST(ScanIndexProperty, SearchAllMatchesReferenceOnFullKeywordCountryFanOut) {
  RandomWorld world(5150, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);

  // The §3.1 fan-out the Identifier issues: every product keyword alone and
  // crossed with every registry country.
  std::vector<Query> queries;
  for (const auto product : filters::allProducts()) {
    for (const auto& keyword : core::Identifier::shodanKeywords(product)) {
      queries.push_back({keyword, std::nullopt});
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }

  index.setSearchMode(BannerIndex::SearchMode::kIndexed);
  const auto indexed = index.searchAll(queries);
  index.setSearchMode(BannerIndex::SearchMode::kReference);
  const auto reference = index.searchAll(queries);
  EXPECT_EQ(indexed, reference);
  EXPECT_GT(indexed.size(), 0u);
}

TEST(ScanIndexProperty, ParallelCrawlIsByteIdenticalToSerialCrawl) {
  RandomWorld worldA(913, mediumWorld());
  RandomWorld worldB(913, mediumWorld());
  const auto geoA = worldA.world().buildGeoDatabase();
  const auto geoB = worldB.world().buildGeoDatabase();

  BannerIndex serial;
  serial.crawl(worldA.world(), geoA, 2048, /*threadLimit=*/1);
  BannerIndex parallel;
  parallel.crawl(worldB.world(), geoB, 2048, /*threadLimit=*/0);

  EXPECT_EQ(exportRecords(serial.records(), 0),
            exportRecords(parallel.records(), 0));
}

core::Identifier makeIdentifier(RandomWorld& world, const BannerIndex& index,
                                std::size_t threads) {
  core::IdentifierConfig config;
  config.threads = threads;
  return core::Identifier(world.world(), index,
                          fingerprint::Engine::withBuiltinSignatures(),
                          world.world().buildGeoDatabase(),
                          world.world().buildAsnDatabase(), config);
}

TEST(ScanIndexProperty, ParallelIdentifyAllIsByteIdenticalToSerial) {
  RandomWorld world(2024, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);

  const auto serial = makeIdentifier(world, index, 1).identifyAll();
  const auto parallel = makeIdentifier(world, index, 0).identifyAll();
  EXPECT_EQ(core::toJson(serial).dump(2), core::toJson(parallel).dump(2));
}

TEST(ScanIndexProperty, ParallelIdentifyAllPassiveIsByteIdenticalToSerial) {
  RandomWorld world(2025, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);

  const auto serial = makeIdentifier(world, index, 1).identifyAllPassive();
  const auto parallel = makeIdentifier(world, index, 0).identifyAllPassive();
  EXPECT_EQ(core::toJson(serial).dump(2), core::toJson(parallel).dump(2));
}

std::vector<std::pair<std::uint32_t, std::uint16_t>> surfacesOf(
    const std::vector<const BannerRecord*>& hits) {
  std::vector<std::pair<std::uint32_t, std::uint16_t>> out;
  out.reserve(hits.size());
  for (const auto* record : hits) out.emplace_back(record->ip.value(), record->port);
  return out;
}

std::vector<std::pair<std::uint32_t, std::uint16_t>> surfacesOf(
    const ShardedBannerIndex& index, const std::vector<std::uint32_t>& docs) {
  std::vector<std::pair<std::uint32_t, std::uint16_t>> out;
  out.reserve(docs.size());
  for (const auto doc : docs) {
    const auto surface = index.surface(doc);
    out.emplace_back(surface.ip.value(), surface.port);
  }
  return out;
}

TEST(ScanIndexProperty, ShardedSearchMatchesMonolithicAndReference) {
  for (const std::uint64_t seed : {101u, 202u}) {
    RandomWorld world(seed, mediumWorld());
    const auto geo = world.world().buildGeoDatabase();
    BannerIndex index;
    index.crawl(world.world(), geo);

    // Small shard target so the corpus spans many shards.
    const auto sharded = ShardedBannerIndex::fromIndex(index, 16);
    ASSERT_EQ(sharded.docCount(), index.size());
    EXPECT_EQ(sharded.vocabularySize(), index.vocabularySize());

    util::Rng rng(seed + 5);
    for (const auto& query : randomQueries(rng, index, 150)) {
      const auto viaSharded = surfacesOf(sharded, sharded.search(query));
      const auto viaIndexed = surfacesOf(
          searchInMode(index, BannerIndex::SearchMode::kIndexed, query));
      const auto viaReference = surfacesOf(
          searchInMode(index, BannerIndex::SearchMode::kReference, query));
      ASSERT_EQ(viaSharded, viaIndexed)
          << "seed=" << seed << " keyword=\"" << query.keyword << "\"";
      ASSERT_EQ(viaSharded, viaReference)
          << "seed=" << seed << " keyword=\"" << query.keyword << "\"";
    }

    util::Rng rngAll(seed + 6);
    const auto queries = randomQueries(rngAll, index, 120);
    index.setSearchMode(BannerIndex::SearchMode::kIndexed);
    EXPECT_EQ(surfacesOf(sharded, sharded.searchAll(queries)),
              surfacesOf(index.searchAll(queries)));
  }
}

TEST(ScanIndexProperty, DeltaIdListRoundTripsRandomAscendingSequences) {
  util::Rng rng(8080);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint32_t> ids;
    std::uint32_t next = rng.index(1000);
    const int count = static_cast<int>(rng.index(200));
    for (int i = 0; i < count; ++i) {
      ids.push_back(next);
      next += 1 + static_cast<std::uint32_t>(rng.index(100000));
    }

    DeltaIdList list;
    for (const auto id : ids) list.append(id);
    ASSERT_EQ(list.count(), ids.size());

    std::vector<std::uint32_t> decoded;
    list.decodeInto(decoded);
    EXPECT_EQ(decoded, ids);

    // Raw-parts round trip (the import path).
    const auto rebuilt = DeltaIdList::fromRaw(list.count(), list.bytes());
    std::vector<std::uint32_t> redecoded;
    rebuilt.decodeInto(redecoded);
    EXPECT_EQ(redecoded, ids);
  }
  // Non-ascending appends are rejected.
  DeltaIdList list;
  list.append(5);
  EXPECT_THROW(list.append(5), std::invalid_argument);
  EXPECT_THROW(list.append(4), std::invalid_argument);
}

TEST(ScanIndexProperty, ShardedIndexSurvivesExportImportRoundTrip) {
  RandomWorld world(606, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);
  const auto sharded = ShardedBannerIndex::fromIndex(index, 16);

  const auto blob = exportShardedIndex(sharded);
  const auto imported = importShardedIndex(blob);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(imported->docCount(), sharded.docCount());
  EXPECT_EQ(imported->shardCount(), sharded.shardCount());
  EXPECT_EQ(imported->vocabularySize(), sharded.vocabularySize());
  EXPECT_FALSE(imported->hasRecordFetcher());
  EXPECT_EQ(exportShardedIndex(*imported), blob);

  // Token-only keywords resolve without a record fetcher; results agree
  // with the fetcher-backed original.
  for (const std::string keyword :
       {"proxysg", "netsweeper", "webadmin", "apache", "html"}) {
    for (const auto country :
         {std::optional<std::string>{}, std::optional<std::string>{"SA"}}) {
      const Query query{keyword, country};
      EXPECT_EQ(imported->search(query), sharded.search(query))
          << "keyword=" << keyword;
    }
  }

  // Corruption is detected: flip one byte in the middle.
  auto corrupted = blob;
  corrupted[corrupted.size() / 2] =
      static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x20);
  EXPECT_FALSE(importShardedIndex(corrupted).has_value());
  // Truncation is detected.
  EXPECT_FALSE(
      importShardedIndex(std::string_view(blob).substr(0, blob.size() / 2))
          .has_value());
}

TEST(ScanIndexProperty, ShardedIndexHandlesEmptyAndSingleDocShards) {
  // Empty corpus: zero docs, queries return nothing, round trip holds.
  const auto empty = ShardedBannerIndex::fromRecords({});
  EXPECT_EQ(empty.docCount(), 0u);
  EXPECT_TRUE(empty.search({"proxysg", std::nullopt}).empty());
  EXPECT_TRUE(empty.searchAll({{"proxysg", std::nullopt}}).empty());
  const auto emptyImported = importShardedIndex(exportShardedIndex(empty));
  ASSERT_TRUE(emptyImported.has_value());
  EXPECT_EQ(emptyImported->docCount(), 0u);

  // One document per shard — the degenerate sharding — still matches the
  // monolithic index on every query.
  RandomWorld world(707, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);
  const auto singletons = ShardedBannerIndex::fromIndex(index, 1);
  ASSERT_EQ(singletons.shardCount(), index.size());

  util::Rng rng(11);
  for (const auto& query : randomQueries(rng, index, 60)) {
    EXPECT_EQ(surfacesOf(singletons, singletons.search(query)),
              surfacesOf(
                  searchInMode(index, BannerIndex::SearchMode::kIndexed, query)))
        << "keyword=\"" << query.keyword << "\"";
  }
}

TEST(ScanIndexProperty, ShardedIdentifyAllMatchesMonolithic) {
  RandomWorld world(909, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex index;
  index.crawl(world.world(), geo);
  const auto sharded = ShardedBannerIndex::fromIndex(index, 16);

  const core::Identifier viaMonolithic(
      world.world(), index, fingerprint::Engine::withBuiltinSignatures(),
      world.world().buildGeoDatabase(), world.world().buildAsnDatabase());
  const core::Identifier viaSharded(
      world.world(), sharded, fingerprint::Engine::withBuiltinSignatures(),
      world.world().buildGeoDatabase(), world.world().buildAsnDatabase());

  EXPECT_EQ(core::toJson(viaMonolithic.identifyAll()).dump(2),
            core::toJson(viaSharded.identifyAll()).dump(2));
  EXPECT_EQ(core::toJson(viaMonolithic.identifyAllPassive()).dump(2),
            core::toJson(viaSharded.identifyAllPassive()).dump(2));
}

TEST(ScanIndexProperty, AddRecordsKeepsIndexConsistent) {
  RandomWorld world(31337, mediumWorld());
  const auto geo = world.world().buildGeoDatabase();
  BannerIndex crawled;
  crawled.crawl(world.world(), geo);

  // Rebuild the same index through the fromRecords/addRecords path in two
  // chunks; queries must agree with the crawl-built index.
  auto records = crawled.records();
  const std::size_t half = records.size() / 2;
  BannerIndex merged = BannerIndex::fromRecords(
      {records.begin(), records.begin() + static_cast<std::ptrdiff_t>(half)});
  merged.addRecords(
      {records.begin() + static_cast<std::ptrdiff_t>(half), records.end()});
  ASSERT_EQ(merged.size(), crawled.size());

  util::Rng rng(99);
  for (const auto& query : randomQueries(rng, crawled, 100)) {
    const auto a = crawled.search(query);
    const auto b = merged.search(query);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i]->ip.value(), b[i]->ip.value());
      EXPECT_EQ(a[i]->port, b[i]->port);
    }
  }
}

}  // namespace
}  // namespace urlf::scan
