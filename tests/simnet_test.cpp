#include <gtest/gtest.h>

#include <set>

#include "simnet/hosting.h"
#include "simnet/origin_server.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::simnet {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

/// A middlebox scripted for tests: blocks one hostname, resets another,
/// drops a third, annotates everything else.
class ScriptedBox : public Middlebox {
 public:
  std::string name() const override { return "scripted"; }

  std::optional<InterceptAction> intercept(
      http::Request& request, const InterceptContext&) override {
    ++seen;
    const auto& host = request.url.host();
    if (host == "blocked.example")
      return InterceptAction::respond(
          http::Response::make(http::Status::kForbidden, "<h1>denied</h1>"));
    if (host == "reset.example") return InterceptAction::reset();
    if (host == "dropped.example") return InterceptAction::drop();
    request.headers.add("X-Annotated", "yes");
    return std::nullopt;
  }

  void postProcess(const http::Request&, http::Response& response,
                   const InterceptContext&) override {
    response.headers.add("Via", "1.1 scripted");
  }

  int seen = 0;
};

/// Redirects "/" to http://site.example/ (absolute Location).
struct FixedRedirector : HttpEndpoint {
  http::Response handle(const http::Request&, util::SimTime) override {
    auto resp = http::Response::make(http::Status::kFound);
    resp.headers.add("Location", "http://site.example/");
    return resp;
  }
  std::string describe() const override { return "redirector"; }
};

/// Redirects every request back to itself (a redirect loop).
struct LoopRedirector : HttpEndpoint {
  http::Response handle(const http::Request&, util::SimTime) override {
    auto resp = http::Response::make(http::Status::kFound);
    resp.headers.add("Location", "http://loop.example/");
    return resp;
  }
  std::string describe() const override { return "loop"; }
};

/// Redirects "/" to the relative path "/landing?x=1".
struct RelativeRedirector : HttpEndpoint {
  http::Response handle(const http::Request& request, util::SimTime) override {
    if (request.url.path() == "/landing")
      return http::Response::make(http::Status::kOk, "landed");
    auto resp = http::Response::make(http::Status::kFound);
    resp.headers.add("Location", "/landing?x=1");
    return resp;
  }
  std::string describe() const override { return "relative"; }
};

class SimnetFixture : public ::testing::Test {
 protected:
  SimnetFixture() : world(1234) {
    world.createAs(100, "ISP-AS", "Test ISP", "SA", {prefix("10.0.0.0/16")});
    world.createAs(200, "WEB-AS", "Web hosting", "US", {prefix("20.0.0.0/16")});
    isp = &world.createIsp("Test ISP", "SA", {100});
    field = &world.createVantage("field", "SA", isp);
    lab = &world.createVantage("lab", "CA", nullptr);

    auto& server = world.makeEndpoint<OriginServer>("site.example");
    Page page;
    page.title = "Site";
    page.body = "<p>hello</p>";
    server.setPage("/", page);
    serverIp = world.allocateAddress(200);
    world.bind(serverIp, 80, server, true);
    world.registerHostname("site.example", serverIp);
    origin = &server;
  }

  World world;
  Isp* isp = nullptr;
  VantagePoint* field = nullptr;
  VantagePoint* lab = nullptr;
  OriginServer* origin = nullptr;
  net::Ipv4Addr serverIp;
};

// -------------------------------------------------------------- World ----

TEST_F(SimnetFixture, DuplicateAsnRejected) {
  EXPECT_THROW(world.createAs(100, "X", "X", "US", {}), std::invalid_argument);
}

TEST_F(SimnetFixture, IspRequiresKnownAsn) {
  EXPECT_THROW(world.createIsp("Bad", "US", {999}), std::invalid_argument);
}

TEST_F(SimnetFixture, FindIspByNameCaseInsensitive) {
  EXPECT_EQ(world.findIsp("test isp"), isp);
  EXPECT_EQ(world.findIsp("absent"), nullptr);
}

TEST_F(SimnetFixture, AddressAllocationSkipsNetworkAddress) {
  // First allocation in the fixture went to the origin server.
  EXPECT_EQ(serverIp.toString(), "20.0.0.1");
  EXPECT_EQ(world.allocateAddress(200).toString(), "20.0.0.2");
}

TEST_F(SimnetFixture, AllocationFromUnknownAsnThrows) {
  EXPECT_THROW(world.allocateAddress(12345), std::invalid_argument);
}

TEST_F(SimnetFixture, AllocationExhaustsSmallPrefix) {
  world.createAs(300, "TINY", "Tiny", "US", {prefix("30.0.0.0/30")});
  EXPECT_NO_THROW(world.allocateAddress(300));  // .1
  EXPECT_NO_THROW(world.allocateAddress(300));  // .2
  EXPECT_NO_THROW(world.allocateAddress(300));  // .3
  EXPECT_THROW(world.allocateAddress(300), std::runtime_error);
}

TEST_F(SimnetFixture, DnsResolveAndIpLiterals) {
  EXPECT_EQ(world.resolve("site.example"), serverIp);
  EXPECT_EQ(world.resolve("SITE.EXAMPLE"), serverIp);
  EXPECT_FALSE(world.resolve("nx.example"));
  EXPECT_EQ(world.resolve("1.2.3.4"), net::Ipv4Addr(1, 2, 3, 4));
}

TEST_F(SimnetFixture, UnregisterHostname) {
  world.unregisterHostname("site.example");
  EXPECT_FALSE(world.resolve("site.example"));
}

TEST_F(SimnetFixture, DoubleBindRejected) {
  auto& extra = world.makeEndpoint<OriginServer>("x.example");
  EXPECT_THROW(world.bind(serverIp, 80, extra, true), std::invalid_argument);
  EXPECT_NO_THROW(world.bind(serverIp, 81, extra, true));
}

TEST_F(SimnetFixture, UnbindAllowsRebindAndHidesSurface) {
  world.unbind(serverIp, 80);
  EXPECT_EQ(world.endpointAt(serverIp, 80), nullptr);
  auto& extra = world.makeEndpoint<OriginServer>("y.example");
  EXPECT_NO_THROW(world.bind(serverIp, 80, extra, false));
  EXPECT_EQ(world.endpointAt(serverIp, 80), &extra);
  EXPECT_EQ(world.externalEndpointAt(serverIp, 80), nullptr);  // hidden
}

TEST_F(SimnetFixture, ExternalSurfacesListsOnlyVisible) {
  auto& hidden = world.makeEndpoint<OriginServer>("h.example");
  const auto hiddenIp = world.allocateAddress(200);
  world.bind(hiddenIp, 80, hidden, false);
  const auto surfaces = world.externalSurfaces();
  ASSERT_EQ(surfaces.size(), 1u);
  EXPECT_EQ(surfaces[0].ip, serverIp);
}

TEST_F(SimnetFixture, VantageLookup) {
  EXPECT_EQ(world.findVantage("field"), field);
  EXPECT_EQ(world.findVantage("FIELD"), field);
  EXPECT_EQ(world.findVantage("nope"), nullptr);
  EXPECT_TRUE(lab->isLab());
  EXPECT_FALSE(field->isLab());
}

TEST_F(SimnetFixture, DerivedGeoAndWhoisDatabases) {
  const auto geo = world.buildGeoDatabase();
  EXPECT_EQ(geo.lookup(serverIp).value(), "US");
  EXPECT_EQ(geo.lookup(net::Ipv4Addr(10, 0, 0, 5)).value(), "SA");

  const auto whois = world.buildAsnDatabase();
  const auto record = whois.lookup(serverIp);
  ASSERT_TRUE(record);
  EXPECT_EQ(record->asn, 200u);
  EXPECT_EQ(record->description, "Web hosting");
}

// ---------------------------------------------------------- Transport ----

TEST_F(SimnetFixture, LabFetchReachesOrigin) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 200);
  EXPECT_NE(result.response->body.find("hello"), std::string::npos);
}

TEST_F(SimnetFixture, DnsFailure) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://nx.example/");
  EXPECT_EQ(result.outcome, FetchOutcome::kDnsFailure);
  EXPECT_FALSE(result.ok());
}

TEST_F(SimnetFixture, ConnectFailureOnUnboundPort) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example:8080/");
  EXPECT_EQ(result.outcome, FetchOutcome::kConnectFailure);
}

TEST_F(SimnetFixture, MalformedUrlReportsError) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "not-a-url");
  EXPECT_EQ(result.outcome, FetchOutcome::kBadUrl);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("malformed"), std::string::npos);
  // A parse error is client-side: no fault roll, no retry, no clock motion.
  EXPECT_EQ(result.injectedFault, FaultKind::kNone);
  EXPECT_EQ(result.attempts, 1);
}

TEST_F(SimnetFixture, MiddleboxBlocksFieldButNotLab) {
  auto& box = world.makeMiddlebox<ScriptedBox>();
  isp->attachMiddlebox(box);
  world.registerHostname("blocked.example", serverIp);  // same endpoint

  Transport transport(world);
  const auto fieldResult = transport.fetchUrl(*field, "http://blocked.example/");
  ASSERT_TRUE(fieldResult.ok());
  EXPECT_EQ(fieldResult.response->statusCode, 403);

  const auto labResult = transport.fetchUrl(*lab, "http://blocked.example/");
  ASSERT_TRUE(labResult.ok());
  EXPECT_EQ(labResult.response->statusCode, 200);
}

TEST_F(SimnetFixture, MiddleboxResetAndDrop) {
  auto& box = world.makeMiddlebox<ScriptedBox>();
  isp->attachMiddlebox(box);
  world.registerHostname("reset.example", serverIp);
  world.registerHostname("dropped.example", serverIp);

  Transport transport(world);
  EXPECT_EQ(transport.fetchUrl(*field, "http://reset.example/").outcome,
            FetchOutcome::kReset);
  EXPECT_EQ(transport.fetchUrl(*field, "http://dropped.example/").outcome,
            FetchOutcome::kTimeout);
}

TEST_F(SimnetFixture, MiddleboxAnnotatesAndPostProcesses) {
  auto& box = world.makeMiddlebox<ScriptedBox>();
  isp->attachMiddlebox(box);

  Transport transport(world);
  const auto result = transport.fetchUrl(*field, "http://site.example/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->headers.get("Via").value(), "1.1 scripted");
  EXPECT_EQ(box.seen, 1);

  // The lab is never intercepted.
  const auto labResult = transport.fetchUrl(*lab, "http://site.example/");
  EXPECT_FALSE(labResult.response->headers.contains("Via"));
  EXPECT_EQ(box.seen, 1);
}

TEST_F(SimnetFixture, ChainShortCircuitsAtFirstBlock) {
  auto& first = world.makeMiddlebox<ScriptedBox>();
  auto& second = world.makeMiddlebox<ScriptedBox>();
  isp->attachMiddlebox(first);
  isp->attachMiddlebox(second);
  world.registerHostname("blocked.example", serverIp);

  Transport transport(world);
  (void)transport.fetchUrl(*field, "http://blocked.example/");
  EXPECT_EQ(first.seen, 1);
  EXPECT_EQ(second.seen, 0);
}

TEST_F(SimnetFixture, RedirectFollowing) {
  auto& redirector = world.makeEndpoint<FixedRedirector>();
  const auto redirectorIp = world.allocateAddress(200);
  world.bind(redirectorIp, 80, redirector, true);
  world.registerHostname("redirect.example", redirectorIp);

  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://redirect.example/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 200);
  ASSERT_EQ(result.redirectChain.size(), 1u);
  EXPECT_EQ(result.redirectChain[0].statusCode, 302);
}

TEST_F(SimnetFixture, RedirectNotFollowedWhenDisabled) {
  auto& redirector = world.makeEndpoint<FixedRedirector>();
  const auto redirectorIp = world.allocateAddress(200);
  world.bind(redirectorIp, 80, redirector, true);
  world.registerHostname("redirect.example", redirectorIp);

  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://redirect.example/",
                                         {.followRedirects = false});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 302);
  EXPECT_TRUE(result.redirectChain.empty());
}

TEST_F(SimnetFixture, RedirectLoopBoundedByMaxRedirects) {
  auto& looper = world.makeEndpoint<LoopRedirector>();
  const auto loopIp = world.allocateAddress(200);
  world.bind(loopIp, 80, looper, true);
  world.registerHostname("loop.example", loopIp);

  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://loop.example/",
                                         {.followRedirects = true,
                                          .maxRedirects = 3});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 302);  // still redirecting when capped
  EXPECT_EQ(result.redirectChain.size(), 3u);
}

TEST_F(SimnetFixture, RelativeRedirectResolvesAgainstHost) {
  auto& relative = world.makeEndpoint<RelativeRedirector>();
  const auto ip = world.allocateAddress(200);
  world.bind(ip, 80, relative, true);
  world.registerHostname("relative.example", ip);

  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://relative.example/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 200);
  EXPECT_NE(result.response->body.find("landed"), std::string::npos);
}

// -------------------------------------------------------- OriginServer ----

TEST_F(SimnetFixture, UnknownPathIs404) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example/missing");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 404);
}

TEST_F(SimnetFixture, CatchAllServesEveryPath) {
  origin->setCatchAll({.title = "any", .body = "anything"});
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example/whatever");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 200);
}

TEST_F(SimnetFixture, ServerHeaderPresent) {
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example/");
  EXPECT_TRUE(result.response->headers.contains("Server"));
}

TEST_F(SimnetFixture, NonHtmlContentServedVerbatim) {
  Page image;
  image.contentType = "image/jpeg";
  image.body = "jpegbytes";
  origin->setPage("/pic.jpg", image);
  Transport transport(world);
  const auto result = transport.fetchUrl(*lab, "http://site.example/pic.jpg");
  EXPECT_EQ(result.response->body, "jpegbytes");
  EXPECT_EQ(result.response->headers.get("Content-Type").value(), "image/jpeg");
}

// ------------------------------------------------------------ Hosting ----

TEST_F(SimnetFixture, HostingCreatesResolvableDomains) {
  HostingProvider hosting(world, 200);
  const auto domain = hosting.createFreshDomain(ContentProfile::kGlypeProxy);
  EXPECT_TRUE(world.resolve(domain.hostname));
  EXPECT_TRUE(net::isValidHostname(domain.hostname));
  EXPECT_TRUE(domain.hostname.ends_with(".info"));

  Transport transport(world);
  const auto result =
      transport.fetchUrl(*lab, "http://" + domain.hostname + "/");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.response->body.find("Glype"), std::string::npos);
}

TEST_F(SimnetFixture, HostingNamesAreUnique) {
  HostingProvider hosting(world, 200);
  std::set<std::string> names;
  for (int i = 0; i < 60; ++i) names.insert(hosting.freshDomainName());
  EXPECT_EQ(names.size(), 60u);
}

TEST_F(SimnetFixture, AdultProfileHasBenignFile) {
  HostingProvider hosting(world, 200);
  const auto domain = hosting.createFreshDomain(ContentProfile::kAdultImage);
  Transport transport(world);
  const auto benign =
      transport.fetchUrl(*lab, "http://" + domain.hostname + "/benign.jpg");
  ASSERT_TRUE(benign.ok());
  EXPECT_EQ(benign.response->statusCode, 200);
  const auto index =
      transport.fetchUrl(*lab, "http://" + domain.hostname + "/");
  EXPECT_NE(index.response->body.find("adult content"), std::string::npos);
}

TEST_F(SimnetFixture, SanitizeRemovesOffensiveContent) {
  HostingProvider hosting(world, 200);
  const auto domain = hosting.createFreshDomain(ContentProfile::kAdultImage);
  hosting.sanitizeDomain(domain);
  Transport transport(world);
  const auto index =
      transport.fetchUrl(*lab, "http://" + domain.hostname + "/");
  EXPECT_EQ(index.response->body.find("adult content"), std::string::npos);
}

TEST_F(SimnetFixture, TeardownRemovesDomain) {
  HostingProvider hosting(world, 200);
  const auto domain = hosting.createFreshDomain(ContentProfile::kBenign);
  hosting.teardownDomain(domain);
  EXPECT_FALSE(world.resolve(domain.hostname));
  Transport transport(world);
  EXPECT_EQ(transport.fetchUrl(*lab, "http://" + domain.hostname + "/").outcome,
            FetchOutcome::kDnsFailure);
}

TEST_F(SimnetFixture, HostingRequiresKnownAsn) {
  EXPECT_THROW(HostingProvider(world, 999), std::invalid_argument);
}

TEST(ContentProfileTest, LabelsAndNames) {
  EXPECT_EQ(toString(ContentProfile::kGlypeProxy), "glype-proxy");
  EXPECT_EQ(contentLabel(ContentProfile::kGlypeProxy), "proxy-script");
  EXPECT_EQ(contentLabel(ContentProfile::kAdultImage), "pornography");
  EXPECT_EQ(contentLabel(ContentProfile::kBenign), "benign");
}

}  // namespace
}  // namespace urlf::simnet
