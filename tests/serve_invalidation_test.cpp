// Epoch-based invalidation and verdict-store hygiene for the resident
// campaign server (DESIGN.md §4.6). A category-DB recategorization while the
// server is live must (a) flip verdicts for sessions that start AFTER the
// edit, (b) leave sessions that captured BEFORE the edit byte-identical, and
// (c) never let the shared verdict store leak a verdict across vantages or
// across epochs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/message.h"
#include "report/json.h"
#include "scenarios/campaign.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace {

using namespace urlf;
using report::Json;

// humanrightsmonitor.org carries ONLY a Netsweeper categorization in the
// seeded world, so Bayanat Al-Oula (Saudi SmartFilter blocking only
// "Pornography") lets it through — until the vendor recategorizes it.
constexpr const char* kFlipHost = "humanrightsmonitor.org";
constexpr const char* kFlipUrl = "http://humanrightsmonitor.org/";
// mediafreedomwatch.org is SmartFilter "General News": blocked on Etisalat
// (blocks id 8), accessible on Bayanat (blocks only id 1).
constexpr const char* kSplitUrl = "http://mediafreedomwatch.org/";
constexpr const char* kDate = "2013-05-06";

http::Request post(const std::string& path, const Json& body) {
  http::Request request;
  request.method = "POST";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  request.headers.set("Content-Type", "application/json");
  request.body = body.dump();
  return request;
}

http::Request get(const std::string& path) {
  http::Request request;
  request.method = "GET";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  return request;
}

Json queryBody(const std::string& vantage, const std::string& url) {
  Json body = Json::object();
  body["kind"] = Json::string("query");
  body["snapshot"] = Json::string("paper");
  body["vantage"] = Json::string(vantage);
  body["date"] = Json::string(kDate);
  Json urls = Json::array();
  urls.push(Json::string(url));
  body["urls"] = std::move(urls);
  return body;
}

Json recategorizeBody(const std::string& host, const std::string& category) {
  Json body = Json::object();
  body["snapshot"] = Json::string("paper");
  body["product"] = Json::string("McAfee SmartFilter");
  body["host"] = Json::string(host);
  body["category"] = Json::string(category);
  return body;
}

/// Verdict of the single row in a query response, or "<status NNN>".
std::string verdictOf(const http::Response& response) {
  if (response.statusCode != 200)
    return "<status " + std::to_string(response.statusCode) + ">";
  const auto body = Json::parse(response.body);
  if (!body) return "<unparseable>";
  const auto* results = body->find("results");
  if (results == nullptr || !results->asArray() || results->asArray()->empty())
    return "<no rows>";
  const auto* verdict = (*results->asArray())[0].find("verdict");
  if (verdict == nullptr || !verdict->asString()) return "<no verdict>";
  return *verdict->asString();
}

double numberField(const http::Response& response, const std::string& field) {
  const auto body = Json::parse(response.body);
  if (!body) return -1;
  const auto* value = body->find(field);
  if (value == nullptr || !value->asNumber()) return -1;
  return *value->asNumber();
}

TEST(ServeInvalidationTest, RecategorizationFlipsNewSessionsOnly) {
  serve::CampaignServer server({.workers = 2});
  server.addSnapshot("paper");

  // Pre-edit: accessible from Bayanat, and the verdict lands in the shared
  // store under the epoch-0 scope.
  const auto before =
      server.handle(post("/v1/session", queryBody("field-bayanat", kFlipUrl)));
  ASSERT_EQ(before.statusCode, 200) << before.body;
  EXPECT_EQ(verdictOf(before), "accessible");
  EXPECT_EQ(numberField(before, "epoch"), 0);
  ASSERT_GT(server.stats().memo.inserts, 0u);

  // An in-flight session captures its spec now, before the edit lands.
  auto* snapshot = server.findSnapshot("paper");
  ASSERT_NE(snapshot, nullptr);
  const serve::SnapshotSpec inFlight = snapshot->capture();

  const auto edit = server.handle(post(
      "/v1/admin/recategorize", recategorizeBody(kFlipHost, "Pornography")));
  ASSERT_EQ(edit.statusCode, 200) << edit.body;
  EXPECT_EQ(numberField(edit, "epoch"), 1);

  // The old generation's verdicts are purged, not just orphaned.
  EXPECT_GT(server.stats().memo.invalidated, 0u);

  // New sessions capture epoch 1: the verdict flips, attributed to the
  // SmartFilter install. Had the pre-edit "accessible" leaked across the
  // epoch boundary, this would still report accessible.
  const auto after =
      server.handle(post("/v1/session", queryBody("field-bayanat", kFlipUrl)));
  ASSERT_EQ(after.statusCode, 200) << after.body;
  EXPECT_EQ(verdictOf(after), "blocked");
  EXPECT_EQ(numberField(after, "epoch"), 1);

  // The in-flight session still runs against its pre-edit capture and
  // reproduces the solo epoch-0 digest exactly.
  const auto soloDigest =
      scenarios::runPaperCampaign(scenarios::CampaignOptions{}).digestHex();
  auto inFlightWorld = serve::SnapshotSpec::materialize(inFlight);
  const auto inFlightReport = scenarios::runPaperCampaign(
      *inFlightWorld, inFlight.options, scenarios::CampaignRunContext{});
  EXPECT_EQ(inFlightReport.digestHex(), soloDigest);

  // A campaign session started after the edit sees the new database: its
  // digest matches a direct run over the post-edit spec, and differs from
  // the epoch-0 digest (the recategorized host changes Table 4 rows).
  const serve::SnapshotSpec postEdit = snapshot->capture();
  auto postEditWorld = serve::SnapshotSpec::materialize(postEdit);
  const auto postEditReport = scenarios::runPaperCampaign(
      *postEditWorld, postEdit.options, scenarios::CampaignRunContext{});
  Json campaign = Json::object();
  campaign["kind"] = Json::string("campaign");
  campaign["snapshot"] = Json::string("paper");
  const auto session = server.handle(post("/v1/session", campaign));
  ASSERT_EQ(session.statusCode, 200) << session.body;
  const auto sessionBody = Json::parse(session.body);
  ASSERT_TRUE(sessionBody.has_value());
  const auto* digest = sessionBody->find("digest");
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(*digest->asString(), postEditReport.digestHex());
  EXPECT_NE(*digest->asString(), soloDigest);

  // /v1/snapshots reports the bumped epoch and overlay depth.
  const auto listing = server.handle(get("/v1/snapshots"));
  ASSERT_EQ(listing.statusCode, 200);
  const auto listingBody = Json::parse(listing.body);
  ASSERT_TRUE(listingBody.has_value());
  const auto* snapshots = listingBody->find("snapshots");
  ASSERT_NE(snapshots, nullptr);
  ASSERT_TRUE(snapshots->asArray());
  ASSERT_EQ(snapshots->asArray()->size(), 1u);
  const auto& entry = (*snapshots->asArray())[0];
  EXPECT_EQ(*entry.find("epoch")->asNumber(), 1);
  EXPECT_EQ(*entry.find("overlay")->asNumber(), 1);
}

TEST(ServeInvalidationTest, SharedStoreNeverLeaksAcrossVantages) {
  serve::CampaignServer server({.workers = 2, .shareVerdicts = true});
  server.addSnapshot("paper");

  // Etisalat blocks the SmartFilter "General News" site; its verdict is
  // inserted into the shared store first.
  const auto etisalat = server.handle(
      post("/v1/session", queryBody("field-etisalat", kSplitUrl)));
  ASSERT_EQ(etisalat.statusCode, 200) << etisalat.body;
  EXPECT_EQ(verdictOf(etisalat), "blocked");

  // Bayanat then queries the SAME url in the SAME scope and epoch. The
  // store key carries the field vantage, so the Etisalat verdict must not
  // surface here.
  const auto bayanat = server.handle(
      post("/v1/session", queryBody("field-bayanat", kSplitUrl)));
  ASSERT_EQ(bayanat.statusCode, 200) << bayanat.body;
  EXPECT_EQ(verdictOf(bayanat), "accessible");

  // And the converse refresh: Etisalat again, now served from the store.
  const auto again = server.handle(
      post("/v1/session", queryBody("field-etisalat", kSplitUrl)));
  ASSERT_EQ(again.statusCode, 200);
  EXPECT_EQ(verdictOf(again), "blocked");
  EXPECT_GT(numberField(again, "shared_hits"), 0);
}

TEST(ServeInvalidationTest, RepeatQueriesReuseStoreAndPooledWorlds) {
  serve::CampaignServer server({.workers = 2});
  server.addSnapshot("paper");

  const auto first =
      server.handle(post("/v1/session", queryBody("field-bayanat", kSplitUrl)));
  ASSERT_EQ(first.statusCode, 200);
  EXPECT_EQ(numberField(first, "shared_hits"), 0);
  EXPECT_EQ(server.stats().pooledWorlds, 1u);

  const auto second =
      server.handle(post("/v1/session", queryBody("field-bayanat", kSplitUrl)));
  ASSERT_EQ(second.statusCode, 200);
  EXPECT_GT(numberField(second, "shared_hits"), 0);

  // Same scope, same date, same urls: the digests must agree whether the
  // verdicts came from fetches or the shared store.
  const auto firstBody = Json::parse(first.body);
  const auto secondBody = Json::parse(second.body);
  ASSERT_TRUE(firstBody.has_value() && secondBody.has_value());
  EXPECT_EQ(*firstBody->find("digest")->asString(),
            *secondBody->find("digest")->asString());
}

TEST(ServeInvalidationTest, RecategorizeValidation) {
  serve::CampaignServer server({.workers = 1});
  server.addSnapshot("paper");

  // Unknown category name for the product's scheme.
  auto bad = recategorizeBody(kFlipHost, "No Such Category");
  EXPECT_EQ(server.handle(post("/v1/admin/recategorize", bad)).statusCode, 400);

  // Unknown product.
  bad = recategorizeBody(kFlipHost, "Pornography");
  bad["product"] = Json::string("NotAVendor");
  EXPECT_EQ(server.handle(post("/v1/admin/recategorize", bad)).statusCode, 400);

  // Unknown snapshot.
  bad = recategorizeBody(kFlipHost, "Pornography");
  bad["snapshot"] = Json::string("nope");
  EXPECT_EQ(server.handle(post("/v1/admin/recategorize", bad)).statusCode, 404);

  // Nothing above may have bumped the epoch.
  EXPECT_EQ(server.findSnapshot("paper")->epoch(), 0u);
}

}  // namespace
