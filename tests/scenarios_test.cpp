#include <gtest/gtest.h>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "scenarios/paper_world.h"

namespace urlf::scenarios {
namespace {

using filters::ProductKind;

// ----------------------------------------------------- World invariants ----

TEST(PaperWorldTest, CaseStudyIspsExistWithPaperAsns) {
  PaperWorld paper;
  struct Expected {
    const char* isp;
    std::uint32_t asn;
  };
  const Expected expected[] = {
      {"Etisalat", 5384},  {"Du", 15802},          {"Ooredoo", 42298},
      {"YemenNet", 12486}, {"Bayanat Al-Oula", 48237}, {"Nournet", 29684},
  };
  for (const auto& [name, asn] : expected) {
    auto* isp = paper.world().findIsp(name);
    ASSERT_NE(isp, nullptr) << name;
    EXPECT_EQ(isp->primaryAsn(), asn) << name;
  }
}

TEST(PaperWorldTest, VantagePointsForAllCaseStudyIsps) {
  PaperWorld paper;
  for (const char* vantage :
       {"field-etisalat", "field-du", "field-ooredoo", "field-yemennet",
        "field-bayanat", "field-nournet", "lab-toronto"})
    EXPECT_NE(paper.world().findVantage(vantage), nullptr) << vantage;
  EXPECT_TRUE(paper.world().findVantage("lab-toronto")->isLab());
}

TEST(PaperWorldTest, TenCaseStudiesInChronologicalOrder) {
  PaperWorld paper;
  const auto& studies = paper.caseStudies();
  ASSERT_EQ(studies.size(), 10u);
  for (std::size_t i = 1; i < studies.size(); ++i)
    EXPECT_LE(studies[i - 1].startDate, studies[i].startDate);
  EXPECT_EQ(studies.front().startDate.year, 2012);
  EXPECT_EQ(studies.back().startDate, (util::CivilDate{2013, 8, 5}));
}

TEST(PaperWorldTest, GroundTruthCoversAllProducts) {
  PaperWorld paper;
  std::map<ProductKind, int> counts;
  for (const auto& g : paper.groundTruth()) ++counts[g.product];
  EXPECT_GE(counts[ProductKind::kBlueCoat], 16);
  EXPECT_GE(counts[ProductKind::kSmartFilter], 4);
  EXPECT_GE(counts[ProductKind::kNetsweeper], 10);
  EXPECT_GE(counts[ProductKind::kWebsense], 2);
}

TEST(PaperWorldTest, SaudiFilterIsSharedAcrossBothIsps) {
  PaperWorld paper;
  auto* bayanat = paper.world().findIsp("Bayanat Al-Oula");
  auto* nournet = paper.world().findIsp("Nournet");
  ASSERT_EQ(bayanat->chain().size(), 1u);
  ASSERT_EQ(nournet->chain().size(), 1u);
  EXPECT_EQ(bayanat->chain()[0], nournet->chain()[0]);  // centralized (§4.3)
  EXPECT_EQ(bayanat->chain()[0], &paper.saudiNationalSmartFilter());
}

TEST(PaperWorldTest, EtisalatRunsTandemProxy) {
  PaperWorld paper;
  EXPECT_TRUE(paper.etisalatProxySG().hasFilteringEngine());
  auto* etisalat = paper.world().findIsp("Etisalat");
  ASSERT_EQ(etisalat->chain().size(), 1u);
  EXPECT_EQ(etisalat->chain()[0], &paper.etisalatProxySG());
}

TEST(PaperWorldTest, GlobalAndLocalListsPopulated) {
  PaperWorld paper;
  EXPECT_GE(paper.globalList().entries.size(), 18u);
  for (const char* alpha2 : {"AE", "QA", "SA", "YE"})
    EXPECT_GE(paper.localList(alpha2).entries.size(), 2u) << alpha2;
  EXPECT_TRUE(paper.localList("FR").entries.empty());
}

TEST(PaperWorldTest, ListCategoriesAreValidOniCategories) {
  PaperWorld paper;
  auto check = [](const measure::TestList& list) {
    for (const auto& entry : list.entries)
      EXPECT_TRUE(measure::oniCategoryByName(entry.oniCategory))
          << list.name << ": " << entry.oniCategory;
  };
  check(paper.globalList());
  for (const char* alpha2 : {"AE", "QA", "SA", "YE"})
    check(paper.localList(alpha2));
}

TEST(PaperWorldTest, GlobalListUrlsResolveInWorld) {
  PaperWorld paper;
  for (const auto& entry : paper.globalList().entries) {
    const auto url = net::Url::parse(entry.url);
    ASSERT_TRUE(url) << entry.url;
    EXPECT_TRUE(paper.world().resolve(url->host())) << entry.url;
  }
}

TEST(PaperWorldTest, VendorAccessors) {
  PaperWorld paper;
  for (const auto kind : filters::allProducts()) {
    EXPECT_EQ(paper.vendor(kind).kind(), kind);
    EXPECT_TRUE(paper.vendorSet().has(kind));
  }
}

TEST(PaperWorldTest, YemenPolicyBlocksExactlyTheFiveVendorCategoriesPlusCustom) {
  PaperWorld paper;
  EXPECT_EQ(paper.yemenNetsweeper().policy().blockedCategories,
            (std::set<filters::CategoryId>{2, 23, 39, 43, 47, 66}));
  EXPECT_GT(paper.yemenNetsweeper().policy().offlineProbability, 0.0);
}

// -------------------------------------------------------- Determinism ----

TEST(PaperWorldTest, SameSeedSameWorld) {
  PaperWorld a(kPaperSeed);
  PaperWorld b(kPaperSeed);
  ASSERT_EQ(a.groundTruth().size(), b.groundTruth().size());
  for (std::size_t i = 0; i < a.groundTruth().size(); ++i) {
    EXPECT_EQ(a.groundTruth()[i].serviceIp, b.groundTruth()[i].serviceIp);
    EXPECT_EQ(a.groundTruth()[i].product, b.groundTruth()[i].product);
  }
}

TEST(PaperWorldTest, CaseStudyResultsAreDeterministic) {
  auto runFirstThree = [](PaperWorld& paper) {
    core::Confirmer confirmer(paper.world(), paper.hosting(),
                              paper.vendorSet());
    std::vector<std::string> outcomes;
    for (std::size_t i = 0; i < 3; ++i) {
      const auto& cs = paper.caseStudies()[i];
      advanceClockTo(paper.world(), cs.startDate);
      const auto result = confirmer.run(cs.config);
      outcomes.push_back(result.blockedRatio() + ":" +
                         (result.confirmed ? "y" : "n"));
    }
    return outcomes;
  };
  PaperWorld a(kPaperSeed);
  PaperWorld b(kPaperSeed);
  EXPECT_EQ(runFirstThree(a), runFirstThree(b));
}

// --------------------------------------------- Table 3 reproduction ----

/// The full Table 3, asserted row by row. This is THE headline check: the
/// methodology, run against the simulated world, must reproduce the paper's
/// results exactly.
TEST(Table3Test, ReproducesAllTenRows) {
  PaperWorld paper;
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());

  struct ExpectedRow {
    ProductKind product;
    const char* isp;
    const char* date;
    const char* blocked;
    bool confirmed;
  };
  const ExpectedRow expected[] = {
      {ProductKind::kSmartFilter, "Bayanat Al-Oula", "9/2012", "5/5", true},
      {ProductKind::kSmartFilter, "Etisalat", "9/2012", "5/5", true},
      {ProductKind::kNetsweeper, "Du", "3/2013", "5/6", true},
      {ProductKind::kNetsweeper, "YemenNet", "3/2013", "6/6", true},
      {ProductKind::kBlueCoat, "Etisalat", "4/2013", "0/3", false},
      {ProductKind::kBlueCoat, "Ooredoo", "4/2013", "0/3", false},
      {ProductKind::kSmartFilter, "Ooredoo", "4/2013", "0/5", false},
      {ProductKind::kSmartFilter, "Etisalat", "4/2013", "5/5", true},
      {ProductKind::kSmartFilter, "Nournet", "5/2013", "5/5", true},
      {ProductKind::kNetsweeper, "Ooredoo", "8/2013", "6/6", true},
  };

  const auto& studies = paper.caseStudies();
  ASSERT_EQ(studies.size(), std::size(expected));
  for (std::size_t i = 0; i < studies.size(); ++i) {
    advanceClockTo(paper.world(), studies[i].startDate);
    const auto result = confirmer.run(studies[i].config);
    SCOPED_TRACE("row " + std::to_string(i) + ": " +
                 std::string(filters::toString(expected[i].product)) + " / " +
                 expected[i].isp);
    EXPECT_EQ(result.config.ispName, expected[i].isp);
    EXPECT_EQ(result.config.product, expected[i].product);
    EXPECT_EQ(result.dateLabel, expected[i].date);
    EXPECT_EQ(result.blockedRatio(), expected[i].blocked);
    EXPECT_EQ(result.confirmed, expected[i].confirmed);
  }
}

TEST(Table3Test, NetsweeperCategoryProbeShowsExactlyTheFivePaperCategories) {
  PaperWorld paper;
  advanceClockTo(paper.world(), {2013, 1, 14});
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  const auto probe =
      confirmer.probeNetsweeperCategories("field-yemennet", "lab-toronto");
  ASSERT_EQ(probe.size(), 66u);

  std::set<std::string> blocked;
  for (const auto& result : probe)
    if (result.blocked) blocked.insert(result.categoryName);
  EXPECT_EQ(blocked,
            (std::set<std::string>{"Adult Image", "Phishing", "Pornography",
                                   "Proxy Anonymizer", "Search Keywords"}));
}

// ------------------------------------------------ Figure 1 reproduction ----

TEST(Fig1Test, IdentificationRecoversAllVisibleGroundTruth) {
  PaperWorld paper;
  const auto geo = paper.world().buildGeoDatabase();
  const auto whois = paper.world().buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  core::Identifier identifier(paper.world(), index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  const auto all = identifier.identifyAll();

  for (const auto& truth : paper.groundTruth()) {
    if (!truth.externallyVisible) continue;
    const auto& installations = all.at(truth.product);
    const bool found = std::any_of(
        installations.begin(), installations.end(),
        [&](const core::Installation& inst) {
          return inst.ip == truth.serviceIp &&
                 inst.countryAlpha2 == truth.countryAlpha2 &&
                 inst.asn && inst.asn->asn == truth.asn;
        });
    EXPECT_TRUE(found) << filters::toString(truth.product) << " at "
                       << truth.serviceIp.toString() << " (" << truth.ispName
                       << ")";
  }
}

TEST(Fig1Test, CountriesMatchTheSec32Narrative) {
  PaperWorld paper;
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  core::Identifier identifier(paper.world(), index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, paper.world().buildAsnDatabase());
  const auto countries =
      core::Identifier::countriesByProduct(identifier.identifyAll());

  // §3.2: Blue Coat newly seen in South America, Europe, Asia, Middle East.
  for (const char* alpha2 :
       {"AR", "CL", "FI", "SE", "PH", "TH", "TW", "IL", "LB", "US"})
    EXPECT_TRUE(countries.at(ProductKind::kBlueCoat).contains(alpha2))
        << alpha2;
  // SmartFilter in Pakistan; Netsweeper and Websense in US networks.
  EXPECT_TRUE(countries.at(ProductKind::kSmartFilter).contains("PK"));
  EXPECT_TRUE(countries.at(ProductKind::kNetsweeper).contains("US"));
  EXPECT_EQ(countries.at(ProductKind::kWebsense),
            (std::set<std::string>{"US"}));
}

// ------------------------------------------------------ Option variants ----

TEST(PaperWorldOptionsTest, HiddenSurfacesDefeatScanning) {
  PaperWorld paper(kPaperSeed, {.hideExternalSurfaces = true});
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  core::Identifier identifier(paper.world(), index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, paper.world().buildAsnDatabase());
  for (const auto kind : filters::allProducts()) {
    for (const auto& inst : identifier.identify(kind)) {
      // Nothing found may correspond to a real (now hidden) installation —
      // only vendor-operated infrastructure remains discoverable.
      for (const auto& truth : paper.groundTruth())
        EXPECT_NE(inst.ip, truth.serviceIp);
    }
  }
}

TEST(PaperWorldOptionsTest, DisregardedSubmitterKillsConfirmation) {
  PaperWorld paper(kPaperSeed, {.disregardSubmitter = true});
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  const auto& bayanat = paper.caseStudies()[0];
  advanceClockTo(paper.world(), bayanat.startDate);
  const auto result = confirmer.run(bayanat.config);
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);
}

}  // namespace
}  // namespace urlf::scenarios
