// Crash-tolerant campaign tests (DESIGN.md §4.4): a journaled campaign
// killed at any record boundary and restarted must reproduce the
// uninterrupted run bit-for-bit. The exhaustive every-boundary sweep lives
// in bench/ablation_crash; this suite keeps a fast, deterministic sample of
// the same property in the tier-1 gate, plus the journal lifecycle
// contracts resume depends on (pure replay, simulated crash points,
// cross-thread resume).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "measure/journal.h"
#include "scenarios/campaign.h"

namespace {

using namespace urlf;
using measure::CampaignJournal;
namespace fs = std::filesystem;

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Per-test temp directory, removed on teardown.
class CampaignRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("urlf_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// An outage+breaker campaign: exercises degraded rows, breaker events
  /// and OutagePlan state through the journal, not just the happy path.
  static scenarios::CampaignOptions outageOptions() {
    scenarios::CampaignOptions options;
    options.healthEnabled = true;
    options.breaker.failureThreshold = 5;
    options.breaker.cooldownHours = 24;
    options.outages.vantageDeaths.push_back({"field-nournet", {2013, 5, 8}});
    return options;
  }

  fs::path dir_;
};

TEST_F(CampaignRecoveryTest, SampledBoundaryResumeReproducesDigest) {
  const auto options = outageOptions();
  const fs::path fullPath = dir_ / "full.journal";
  auto journal = CampaignJournal::start(fullPath.string(),
                                        options.headerJson());
  const auto full = scenarios::runPaperCampaign(options, &journal);
  const std::string fullText = readFile(fullPath);
  const auto boundaries = CampaignJournal::recordBoundaries(fullText);
  ASSERT_GT(boundaries.size(), 10u);

  // Sample the boundary space: the very start (nothing but the header), a
  // spread of interior points, and the final boundary (pure replay).
  const std::vector<std::size_t> sample{
      0, boundaries.size() / 5, boundaries.size() / 2,
      boundaries.size() - 2, boundaries.size() - 1};
  const fs::path crashPath = dir_ / "crash.journal";
  for (const std::size_t k : sample) {
    SCOPED_TRACE("boundary " + std::to_string(k));
    writeFile(crashPath, std::string_view(fullText).substr(0, boundaries[k]));

    auto opened = CampaignJournal::open(crashPath.string());
    ASSERT_TRUE(opened.ok()) << opened.error();
    auto adopted =
        scenarios::CampaignOptions::fromHeaderJson(opened->header());
    ASSERT_TRUE(adopted.ok()) << adopted.error();

    const auto resumed =
        scenarios::runPaperCampaign(adopted.value(), &opened.value());
    EXPECT_EQ(resumed.digest, full.digest);
    EXPECT_EQ(resumed.confirmedCaseStudies, full.confirmedCaseStudies);
    EXPECT_EQ(resumed.degradedRows, full.degradedRows);
    // The resumed journal file must grow back byte-identical.
    EXPECT_EQ(readFile(crashPath), fullText);
  }
}

TEST_F(CampaignRecoveryTest, SimulatedCrashLeavesAValidResumableJournal) {
  const auto options = outageOptions();
  const fs::path path = dir_ / "crashed.journal";
  auto journal = CampaignJournal::start(path.string(), options.headerJson());
  journal.crashAfterAppends(37);
  EXPECT_THROW(
      { (void)scenarios::runPaperCampaign(options, &journal); },
      measure::SimulatedCrash);

  // The crash fired after the 37th append hit the disk; the file must be a
  // well-formed journal holding exactly those records.
  auto opened = CampaignJournal::open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened->recordCount(), 37u);
  EXPECT_FALSE(opened->stats().tornTail);

  // And resuming it completes the campaign with the reference digest.
  const auto reference = scenarios::runPaperCampaign(options);
  auto adopted = scenarios::CampaignOptions::fromHeaderJson(opened->header());
  ASSERT_TRUE(adopted.ok()) << adopted.error();
  const auto resumed =
      scenarios::runPaperCampaign(adopted.value(), &opened.value());
  EXPECT_EQ(resumed.digest, reference.digest);
}

TEST_F(CampaignRecoveryTest, CompletedJournalResumesAsPureReplay) {
  const scenarios::CampaignOptions options;  // clean campaign
  const fs::path path = dir_ / "complete.journal";
  auto journal = CampaignJournal::start(path.string(), options.headerJson());
  const auto full = scenarios::runPaperCampaign(options, &journal);
  const std::string bytesBefore = readFile(path);

  auto opened = CampaignJournal::open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(opened->replayRemaining(), opened->recordCount());

  const auto adopted =
      scenarios::CampaignOptions::fromHeaderJson(opened->header());
  ASSERT_TRUE(adopted.ok()) << adopted.error();
  const auto resumed =
      scenarios::runPaperCampaign(adopted.value(), &opened.value());

  // Nothing new was learned: zero appends, every record replayed over, and
  // the file bytes are untouched.
  EXPECT_EQ(opened->appendCount(), 0u);
  EXPECT_EQ(opened->replayRemaining(), 0u);
  EXPECT_EQ(resumed.digest, full.digest);
  EXPECT_EQ(readFile(path), bytesBefore);
}

TEST_F(CampaignRecoveryTest, JournalFromOneThreadCountResumesAtAnother) {
  // Performance knobs are deliberately NOT in the journal header: a
  // campaign journaled serial must resume pooled (and vice versa) into the
  // same bytes.
  auto options = outageOptions();
  options.classifyThreads = 1;
  const fs::path path = dir_ / "t1.journal";
  auto journal = CampaignJournal::start(path.string(), options.headerJson());
  const auto full = scenarios::runPaperCampaign(options, &journal);
  const std::string fullText = readFile(path);

  const auto boundaries = CampaignJournal::recordBoundaries(fullText);
  writeFile(path, std::string_view(fullText)
                      .substr(0, boundaries[boundaries.size() / 2]));

  auto opened = CampaignJournal::open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.error();
  auto adopted = scenarios::CampaignOptions::fromHeaderJson(opened->header());
  ASSERT_TRUE(adopted.ok()) << adopted.error();
  adopted.value().classifyThreads = 4;

  const auto resumed =
      scenarios::runPaperCampaign(adopted.value(), &opened.value());
  EXPECT_EQ(resumed.digest, full.digest);
  EXPECT_EQ(readFile(path), fullText);
}

TEST_F(CampaignRecoveryTest, MechanismCampaignResumeKeepsCausesDistinct) {
  // Regression: a campaign running packet-level mechanisms *and* a fault
  // plan journals timeouts of two different origins — injected transients
  // ("cause":"fault") and packet-filter kills ("cause":"packet-filter").
  // The header must carry the mechanism config, resume must reproduce the
  // digest, and the journaled causes must never collapse into one.
  scenarios::CampaignOptions options;
  options.world.packetMechanisms = true;
  options.world.faultRate = 0.02;
  const fs::path path = dir_ / "mechanisms.journal";
  auto journal = CampaignJournal::start(path.string(), options.headerJson());
  const auto full = scenarios::runPaperCampaign(options, &journal);
  const std::string fullText = readFile(path);

  // Both causes appear in the journal, attached to events.
  EXPECT_NE(fullText.find("\"cause\":\"packet-filter\""), std::string::npos);
  EXPECT_NE(fullText.find("\"cause\":\"fault\""), std::string::npos);

  // Resume from an interior boundary with options adopted from the header
  // alone — packetMechanisms must survive the header round-trip or the
  // resumed world diverges immediately.
  const auto boundaries = CampaignJournal::recordBoundaries(fullText);
  writeFile(path, std::string_view(fullText)
                      .substr(0, boundaries[boundaries.size() / 2]));
  auto opened = CampaignJournal::open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.error();
  auto adopted = scenarios::CampaignOptions::fromHeaderJson(opened->header());
  ASSERT_TRUE(adopted.ok()) << adopted.error();
  EXPECT_TRUE(adopted.value().world.packetMechanisms);

  const auto resumed =
      scenarios::runPaperCampaign(adopted.value(), &opened.value());
  EXPECT_EQ(resumed.digest, full.digest);
  EXPECT_EQ(readFile(path), fullText);
}

TEST_F(CampaignRecoveryTest, DivergentConfigIsCaughtNotSilentlyAccepted) {
  // Resume whose re-execution disagrees with the journaled records must die
  // loudly with JournalDivergence — never blend two campaigns' histories.
  const scenarios::CampaignOptions clean;
  const fs::path path = dir_ / "divergent.journal";
  auto journal = CampaignJournal::start(path.string(), clean.headerJson());
  (void)scenarios::runPaperCampaign(clean, &journal);

  auto opened = CampaignJournal::open(path.string());
  ASSERT_TRUE(opened.ok()) << opened.error();
  // Deliberately ignore the journal header and replay with a different
  // world configuration.
  scenarios::CampaignOptions tampered;
  tampered.seed = scenarios::kPaperSeed + 1;
  EXPECT_THROW(
      { (void)scenarios::runPaperCampaign(tampered, &opened.value()); },
      measure::JournalDivergence);
}

}  // namespace
