// Measurement sessions: full-trace export/import, offline re-classification
// with a different pattern library, and block-page pattern mining — the §5
// collect-first/analyze-later workflow.
#include <gtest/gtest.h>

#include "measure/mining.h"
#include "measure/session.h"
#include "scenarios/paper_world.h"

namespace urlf::measure {
namespace {

using filters::ProductKind;
using scenarios::PaperWorld;

class SessionFixture : public ::testing::Test {
 protected:
  /// Run a small mixed list (blocked + open) from the Etisalat vantage.
  std::vector<UrlTestResult> runSession() {
    Client client(paper.world(), *paper.world().findVantage("field-etisalat"),
                  *paper.world().findVantage("lab-toronto"));
    const std::vector<std::string> urls{
        "http://adultvideosite.com/",   // blocked: SmartFilter Pornography
        "http://freeproxyhub.com/",     // blocked: SmartFilter Anonymizers
        "http://lgbtvoices.org/",       // blocked: SmartFilter Lifestyle
        "http://worldsportsnews.com/",  // accessible
        "http://searchportal.com/",     // accessible
    };
    return client.testList(urls);
  }

  PaperWorld paper;
};

// ------------------------------------------------------------ Sessions ----

TEST_F(SessionFixture, ExportImportRoundTrip) {
  const auto session = runSession();
  const auto text = exportSession(session, 2);
  const auto imported = importSession(text);
  ASSERT_TRUE(imported);
  ASSERT_EQ(imported->size(), session.size());
  for (std::size_t i = 0; i < session.size(); ++i) {
    EXPECT_EQ((*imported)[i].url, session[i].url);
    EXPECT_EQ((*imported)[i].verdict, session[i].verdict);
    EXPECT_EQ((*imported)[i].blockPage.has_value(),
              session[i].blockPage.has_value());
    if (session[i].blockPage) {
      EXPECT_EQ((*imported)[i].blockPage->product,
                session[i].blockPage->product);
    }
    EXPECT_EQ((*imported)[i].field.outcome, session[i].field.outcome);
    if (session[i].field.response) {
      EXPECT_EQ((*imported)[i].field.response->body,
                session[i].field.response->body);
    }
  }
}

TEST_F(SessionFixture, ImportRejectsMalformed) {
  EXPECT_FALSE(importSession("not json"));
  EXPECT_FALSE(importSession("{}"));
  EXPECT_FALSE(importSession(R"([{"url": 5}])"));
  EXPECT_FALSE(importSession(
      R"([{"url": "http://x/", "field": {"outcome": "warp-speed"},
           "lab": {"outcome": "ok"}}])"));
}

TEST_F(SessionFixture, ReclassifyWithEmptyLibraryLosesAttribution) {
  auto session = runSession();
  int blockedBefore = 0;
  for (const auto& result : session)
    if (result.verdict == Verdict::kBlocked) ++blockedBefore;
  ASSERT_GE(blockedBefore, 3);

  const auto stripped = reclassify(std::move(session), {});
  for (const auto& result : stripped) {
    EXPECT_FALSE(result.blockPage);
    // Without patterns the 403s still differ from the lab -> blocked-other.
    EXPECT_NE(result.verdict, Verdict::kBlocked);
  }
}

TEST_F(SessionFixture, ReclassifyWithBuiltinsRestoresAttribution) {
  auto session = runSession();
  auto stripped = reclassify(session, {});
  const auto restored =
      reclassify(std::move(stripped), builtinBlockPagePatterns());
  int attributed = 0;
  for (const auto& result : restored)
    if (result.blockPage &&
        result.blockPage->product == ProductKind::kSmartFilter)
      ++attributed;
  EXPECT_EQ(attributed, 3);
}

// -------------------------------------------------------------- Mining ----

TEST(MiningTest, LongestCommonSubstring) {
  EXPECT_EQ(longestCommonSubstring("xxMcAfee Web Gatewayyy",
                                   "aaMcAfee Web Gatewaybb"),
            "McAfee Web Gateway");
  EXPECT_EQ(longestCommonSubstring("abc", "xyz"), "");
  EXPECT_EQ(longestCommonSubstring("", "abc"), "");
  EXPECT_EQ(longestCommonSubstring("same", "same"), "same");
  EXPECT_EQ(longestCommonSubstring("ab", "cab"), "ab");
}

TEST(MiningTest, RegexEscape) {
  EXPECT_EQ(regexEscape("blockpage.cgi?ws-session=1"),
            R"(blockpage\.cgi\?ws-session=1)");
  EXPECT_EQ(regexEscape("plain text"), "plain text");
  EXPECT_EQ(regexEscape("(a|b)*"), R"(\(a\|b\)\*)");
}

TEST(MiningTest, MinePatternRequiresCommonCore) {
  const std::vector<std::string> unrelated{"completely different",
                                           "nothing shared here at all"};
  EXPECT_FALSE(
      minePattern(ProductKind::kSmartFilter, unrelated, /*minLength=*/12));

  const std::vector<std::string> shared{
      "AAA The requested URL was blocked by the gateway ZZZ",
      "BBB The requested URL was blocked by the gateway YYY"};
  const auto pattern =
      minePattern(ProductKind::kSmartFilter, shared, /*minLength=*/12);
  ASSERT_TRUE(pattern);
  EXPECT_NE(pattern->regex.find("was blocked by the gateway"),
            std::string::npos);
}

TEST_F(SessionFixture, MinedPatternClassifiesFutureBlockPages) {
  // 1. Record a session with blocked fetches.
  const auto session = runSession();

  // 2. Mine a candidate signature from the blocked traces ("manual
  //    analysis", mechanized).
  const auto mined =
      minePatternFromResults(ProductKind::kSmartFilter, session);
  ASSERT_TRUE(mined);

  // 3. The mined pattern alone classifies a fresh block page ("automated
  //    analysis").
  Client client(paper.world(), *paper.world().findVantage("field-etisalat"),
                *paper.world().findVantage("lab-toronto"));
  auto fresh = client.testUrl("http://religioncritique.org/");  // blocked
  const auto match = classifyBlockPage(fresh.field, {*mined});
  ASSERT_TRUE(match);
  EXPECT_EQ(match->product, ProductKind::kSmartFilter);
  EXPECT_EQ(match->patternName, "McAfee SmartFilter-mined");

  // ...but does NOT match an ordinary page.
  auto open = client.testUrl("http://searchportal.com/");
  EXPECT_FALSE(classifyBlockPage(open.field, {*mined}));
}

TEST_F(SessionFixture, MinedNetsweeperPatternGeneralizesAcrossCategories) {
  // Ooredoo: fully synced Netsweeper blocking Proxy Anonymizer (43),
  // Lifestyle (29) and Religion (45). Mining across two categories keeps
  // only the product-invariant deny-page core, which then classifies a
  // block page of a third category but not an ordinary page.
  Client client(paper.world(), *paper.world().findVantage("field-ooredoo"),
                *paper.world().findVantage("lab-toronto"));

  const auto diverse = client.testList(std::vector<std::string>{
      "http://freeproxyhub.com/", "http://lgbtvoices.org/"});  // 43 + 29
  const auto general =
      minePatternFromResults(ProductKind::kNetsweeper, diverse);
  ASSERT_TRUE(general);

  auto religionPage = client.testUrl("http://religioncritique.org/");  // 45
  const auto match = classifyBlockPage(religionPage.field, {*general});
  ASSERT_TRUE(match);
  EXPECT_EQ(match->product, ProductKind::kNetsweeper);

  auto openPage = client.testUrl("http://searchportal.com/");
  EXPECT_FALSE(classifyBlockPage(openPage.field, {*general}));
}

}  // namespace
}  // namespace urlf::measure
