// Property suite for the adversarial-interference layer and the
// quorum-robust confirmer (DESIGN.md §4.9).
//
// Contracts under test:
//  * A zero-rate InterferencePlan is byte-identical to no plan at all, and
//    the stock paper campaign digest is unchanged (interference is off by
//    default).
//  * RobustConfirmer::confirmList is byte-identical serial vs pooled and
//    across thread counts (collection is serial; derivation is pure).
//  * With a scan identification attached, a quorum >= 2 never confirms a
//    mimicked vendor — disagreement downgrades to kContested.
//  * A paced client never trips the rate-limit lockout on a clean world,
//    while the unpaced reference cadence demonstrably does.
//  * RobustMode::kReference agrees with kRobust on interference-free worlds
//    (the repo's reference-twin convention).
//  * The new FetchResult fields (kSlowDrip / kInterference / interference)
//    round-trip through the session JSON.
//  * Verdict memoization deactivates under an armed plan; the campaign
//    header round-trips the interference knobs; the interference campaign
//    digest is thread-count invariant.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "filters/category.h"
#include "measure/client.h"
#include "measure/robust.h"
#include "measure/session.h"
#include "scenarios/campaign.h"
#include "simnet/interference.h"
#include "simnet/origin_server.h"
#include "simnet/world.h"
#include "util/strings.h"

namespace {

using namespace urlf;
using measure::Verdict;
using simnet::InterferenceEffect;
using simnet::InterferenceProfile;
using simnet::MimicTemplate;

/// Ground-truth censor for the test ISP: serves a genuine Netsweeper
/// blockpage (the same bytes a mimicking censor would fake) for a fixed
/// host set. Everything an interference plan layers on top is deception.
class VendorBlockBox : public simnet::Middlebox {
 public:
  explicit VendorBlockBox(std::set<std::string> hosts)
      : hosts_(std::move(hosts)) {}

  std::string name() const override { return "tl-netsweeper"; }

  std::optional<simnet::InterceptAction> intercept(
      http::Request& request, const simnet::InterceptContext&) override {
    if (hosts_.count(util::toLower(request.url.host())) > 0)
      return simnet::InterceptAction::respond(
          simnet::mimicResponse(MimicTemplate::kNetsweeper));
    return std::nullopt;
  }

 private:
  std::set<std::string> hosts_;
};

struct QuorumWorld {
  std::unique_ptr<simnet::World> world;
  simnet::Isp* isp = nullptr;
  std::vector<const simnet::VantagePoint*> fields;
  const simnet::VantagePoint* lab = nullptr;
  std::vector<std::string> blockedUrls;
  std::vector<std::string> openUrls;

  std::vector<std::string> allUrls() const {
    std::vector<std::string> out = blockedUrls;
    out.insert(out.end(), openUrls.begin(), openUrls.end());
    return out;
  }
};

/// One ISP, `vantages` field vantage points inside it, one lab, two hosts
/// blocked by a genuine Netsweeper box and four open hosts.
QuorumWorld buildWorld(std::uint64_t seed, int vantages = 3) {
  QuorumWorld out;
  out.world = std::make_unique<simnet::World>(seed);
  auto& world = *out.world;

  world.createAs(64501, "TESTNET", "Testland Telecom", "TL",
                 {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24}, 16}});
  out.isp = &world.createIsp("Testland Telecom", "TL", {64501});
  for (int v = 0; v < vantages; ++v)
    out.fields.push_back(&world.createVantage("field-" + std::to_string(v),
                                              "TL", out.isp));
  out.lab = &world.createVantage("lab-control", "CA", nullptr);

  const auto addSite = [&](const std::string& host) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    page.body = "<h1>" + host + "</h1><p>benign content</p>";
    page.contentLabel = "benign";
    server.setPage("/", std::move(page));
    const auto ip = world.allocateAddress(64501);
    world.bind(ip, 80, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  };

  std::set<std::string> blockedHosts;
  for (int i = 0; i < 2; ++i) {
    const std::string host = "blocked" + std::to_string(i) + ".example";
    addSite(host);
    blockedHosts.insert(host);
    out.blockedUrls.push_back("http://" + host + "/");
  }
  for (int i = 0; i < 4; ++i) {
    const std::string host = "open" + std::to_string(i) + ".example";
    addSite(host);
    out.openUrls.push_back("http://" + host + "/");
  }

  auto& box = world.makeMiddlebox<VendorBlockBox>(std::move(blockedHosts));
  out.isp->attachMiddlebox(box);
  return out;
}

/// Mimic pool excluding the deployed vendor: every mimicked blockpage is a
/// misattribution bait.
InterferenceProfile baitProfile(double rate) {
  InterferenceProfile profile;
  profile.tarpitRate = rate;
  profile.flakyRate = rate;
  profile.mimicryRate = rate;
  profile.mimicPool = {MimicTemplate::kSmartFilter, MimicTemplate::kBlueCoat,
                       MimicTemplate::kWebsense};
  return profile;
}

measure::RobustOptions robustDefaults() {
  measure::RobustOptions options;
  options.quorum = 2;
  options.paceBurst = 4;
  options.paceRefillPerHour = 2.0;
  options.attemptDeadlineHours = 6;
  options.hedgeAttempts = 2;
  options.identifiedProduct = filters::ProductKind::kNetsweeper;
  return options;
}

std::string toLine(const measure::RobustUrlVerdict& v) {
  std::string out = v.url;
  out += "|";
  out += toString(v.verdict);
  out += "|";
  out += v.product ? std::string(filters::toString(*v.product)) : "-";
  out += "|" + std::to_string(v.agreeing);
  out += v.mimicrySuspected ? "|mimic?" : "|clean";
  out += "|" + measure::exportSession(v.perVantage);
  return out;
}

// ------------------------------------------- default-off guarantees ----

TEST(InterferenceProperty, ZeroRatePlanByteIdenticalToNoPlan) {
  auto plain = buildWorld(7);
  auto armed = buildWorld(7);
  simnet::InterferencePlan plan(12345);
  plan.setDefaultProfile(InterferenceProfile{});  // every feature off
  plan.setIspProfile("Testland Telecom", InterferenceProfile{});
  armed.world->setInterferencePlan(plan);

  const auto urls = plain.allUrls();
  measure::Client plainClient(*plain.world, *plain.fields[0], *plain.lab);
  measure::Client armedClient(*armed.world, *armed.fields[0], *armed.lab);
  EXPECT_EQ(measure::exportSession(plainClient.testList(urls)),
            measure::exportSession(armedClient.testList(urls)));
}

TEST(InterferenceProperty, StockCampaignDigestUnchanged) {
  // Interference is off by default: the historical paper campaign digest
  // must not move. This is the same pin bench/campaign_e2e carries.
  const auto report = scenarios::runPaperCampaign(scenarios::CampaignOptions{});
  EXPECT_EQ(report.digestHex(), "f3c710fad3d1c2e1");
}

// ----------------------------------------- serial/pooled equivalence ----

TEST(InterferenceProperty, RobustSerialEqualsPooledAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    auto qw = buildWorld(99);
    qw.world->setInterferencePlan([] {
      simnet::InterferencePlan plan(4242);
      plan.setDefaultProfile(baitProfile(0.25));
      return plan;
    }());
    measure::RobustConfirmer confirmer(*qw.world, qw.fields, *qw.lab,
                                       robustDefaults());
    std::string lines;
    for (const auto& v : confirmer.confirmList(qw.allUrls(), threads))
      lines += toLine(v) + "\n";
    return lines;
  };

  const std::string serial = run(1);
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}})
    EXPECT_EQ(serial, run(threads)) << "threads " << threads;
}

// --------------------------------------------------- mimicry defense ----

TEST(InterferenceProperty, QuorumNeverConfirmsMimickedVendor) {
  // The deployed vendor is Netsweeper and the mimic pool excludes it, so a
  // kBlocked verdict attributed to anything else is a successful deception.
  // With the scan identification attached it must never happen — at any
  // mimicry rate, on any seed.
  for (const std::uint64_t seed : {3u, 11u, 20131023u}) {
    for (const double rate : {0.5, 1.0}) {
      auto qw = buildWorld(seed);
      simnet::InterferencePlan plan(seed ^ 0xADF1ADF1ULL);
      InterferenceProfile profile;
      profile.mimicryRate = rate;
      profile.mimicPool = {MimicTemplate::kSmartFilter,
                           MimicTemplate::kBlueCoat,
                           MimicTemplate::kWebsense};
      plan.setDefaultProfile(profile);
      qw.world->setInterferencePlan(plan);

      measure::RobustConfirmer confirmer(*qw.world, qw.fields, *qw.lab,
                                         robustDefaults());
      for (const auto& v : confirmer.confirmList(qw.allUrls())) {
        if (v.verdict == Verdict::kBlocked) {
          ASSERT_TRUE(v.product.has_value()) << v.url;
          EXPECT_EQ(*v.product, filters::ProductKind::kNetsweeper)
              << v.url << " seed " << seed << " rate " << rate;
        }
      }
      // At rate 1.0 every intercepted fetch is mimicked: blocked URLs must
      // land kContested with mimicry flagged, never a confirmed wrong vendor.
      if (rate == 1.0) {
        measure::RobustConfirmer again(*qw.world, qw.fields, *qw.lab,
                                       robustDefaults());
        for (const auto& url : qw.blockedUrls) {
          const auto v = again.confirmUrl(url);
          EXPECT_EQ(v.verdict, Verdict::kContested) << url << " seed " << seed;
          EXPECT_TRUE(v.mimicrySuspected) << url;
          EXPECT_FALSE(v.product.has_value()) << url;
        }
      }
    }
  }
}

// ----------------------------------------------------- pacing defense ----

TEST(InterferenceProperty, PacedClientNeverTripsLockoutOnCleanWorlds) {
  InterferenceProfile lockoutOnly;
  lockoutOnly.lockoutThreshold = 3;
  lockoutOnly.lockoutWindowHours = 1;
  lockoutOnly.banHours = 12;

  // Unpaced reference cadence: every fetch lands at the same simulated
  // instant, so the per-vantage window fills immediately — the threat is
  // real.
  {
    auto qw = buildWorld(21);
    simnet::InterferencePlan plan(77);
    plan.setDefaultProfile(lockoutOnly);
    qw.world->setInterferencePlan(plan);
    measure::RobustOptions unpaced;
    unpaced.quorum = 2;
    unpaced.paceBurst = 0;  // pacing off
    measure::RobustConfirmer confirmer(*qw.world, qw.fields, *qw.lab, unpaced);
    bool sawLockout = false;
    for (const auto& v : confirmer.confirmList(qw.openUrls))
      for (const auto& row : v.perVantage)
        if (row.field.interference == InterferenceEffect::kLockout)
          sawLockout = true;
    EXPECT_TRUE(sawLockout) << "unpaced cadence should trip the lockout";
  }

  // Paced: the token bucket keeps every vantage under the threshold in any
  // window, so the same world yields all-accessible with zero interference.
  {
    auto qw = buildWorld(21);
    simnet::InterferencePlan plan(77);
    plan.setDefaultProfile(lockoutOnly);
    qw.world->setInterferencePlan(plan);
    measure::RobustOptions paced;
    paced.quorum = 2;
    paced.paceBurst = 2;
    paced.paceRefillPerHour = 1.0;
    measure::RobustConfirmer confirmer(*qw.world, qw.fields, *qw.lab, paced);
    for (const auto& v : confirmer.confirmList(qw.openUrls)) {
      EXPECT_EQ(v.verdict, Verdict::kAccessible) << v.url;
      for (const auto& row : v.perVantage)
        EXPECT_EQ(row.field.interference, InterferenceEffect::kNone) << v.url;
    }
  }
}

// ------------------------------------------------- reference twin ----

TEST(InterferenceProperty, ReferenceAgreesWithRobustOnInterferenceFreeWorlds) {
  for (const std::uint64_t seed : {5u, 77u}) {
    auto referenceWorld = buildWorld(seed);
    auto robustWorld = buildWorld(seed);

    measure::RobustOptions reference;
    reference.mode = measure::RobustMode::kReference;
    measure::RobustConfirmer referencePath(*referenceWorld.world,
                                           referenceWorld.fields,
                                           *referenceWorld.lab, reference);
    measure::RobustConfirmer robustPath(*robustWorld.world, robustWorld.fields,
                                        *robustWorld.lab, robustDefaults());

    const auto urls = referenceWorld.allUrls();
    const auto simple = referencePath.confirmList(urls);
    const auto robust = robustPath.confirmList(urls);
    ASSERT_EQ(simple.size(), robust.size());
    for (std::size_t i = 0; i < urls.size(); ++i) {
      EXPECT_EQ(simple[i].verdict, robust[i].verdict) << urls[i];
      EXPECT_EQ(simple[i].product, robust[i].product) << urls[i];
      EXPECT_FALSE(robust[i].mimicrySuspected) << urls[i];
    }
  }
}

// ------------------------------------------------- serialization ----

TEST(InterferenceProperty, SlowDripRoundTripsThroughSessionJson) {
  auto qw = buildWorld(31);
  simnet::InterferencePlan plan(13);
  InterferenceProfile tarpitOnly;
  tarpitOnly.tarpitRate = 1.0;
  plan.setDefaultProfile(tarpitOnly);
  qw.world->setInterferencePlan(plan);

  measure::RobustOptions options = robustDefaults();
  options.hedgeAttempts = 0;  // keep the slow-drip row
  measure::RobustConfirmer confirmer(*qw.world, qw.fields, *qw.lab, options);
  const auto verdict = confirmer.confirmUrl(qw.blockedUrls.front());
  ASSERT_FALSE(verdict.perVantage.empty());
  const auto& row = verdict.perVantage.front();
  ASSERT_EQ(row.field.signature, simnet::FailureSignature::kSlowDrip);
  ASSERT_EQ(row.field.cause, simnet::FailureCause::kInterference);
  ASSERT_EQ(row.field.interference, InterferenceEffect::kTarpit);

  const std::string text = measure::exportSession(verdict.perVantage);
  const auto back = measure::importSession(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), verdict.perVantage.size());
  EXPECT_EQ(back->front().field.signature,
            simnet::FailureSignature::kSlowDrip);
  EXPECT_EQ(back->front().field.cause, simnet::FailureCause::kInterference);
  EXPECT_EQ(back->front().field.interference, InterferenceEffect::kTarpit);
  EXPECT_EQ(measure::exportSession(*back), text);
}

// ------------------------------------------- memo + campaign gating ----

TEST(InterferenceProperty, VerdictMemoDeactivatesUnderInterference) {
  auto clean = buildWorld(41);
  measure::Client cleanClient(*clean.world, *clean.fields[0], *clean.lab);
  cleanClient.enableVerdictMemo(true);
  EXPECT_TRUE(cleanClient.verdictMemoActive());
  EXPECT_TRUE(cleanClient.cacheableChains());

  auto armed = buildWorld(41);
  simnet::InterferencePlan plan(9);
  plan.setDefaultProfile(baitProfile(0.05));
  armed.world->setInterferencePlan(plan);
  measure::Client armedClient(*armed.world, *armed.fields[0], *armed.lab);
  armedClient.enableVerdictMemo(true);
  EXPECT_FALSE(armedClient.verdictMemoActive());
  EXPECT_FALSE(armedClient.cacheableChains());
}

TEST(InterferenceProperty, CampaignHeaderRoundTripsInterferenceKnobs) {
  scenarios::CampaignOptions options;
  options.world.interferenceRate = 0.07;
  options.world.interferenceSeed = 99;
  options.world.quorumVantages = 2;
  options.quorum = 3;
  options.hedge = true;

  const auto header = options.headerJson();
  const auto back = scenarios::CampaignOptions::fromHeaderJson(header);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value().world.interferenceRate, 0.07);
  EXPECT_EQ(back.value().world.interferenceSeed, 99u);
  EXPECT_EQ(back.value().world.quorumVantages, 2);
  EXPECT_EQ(back.value().quorum, 3);
  EXPECT_TRUE(back.value().hedge);
}

TEST(InterferenceProperty, InterferenceCampaignDigestStableAcrossThreads) {
  scenarios::CampaignOptions options;
  options.world.interferenceRate = 0.05;
  options.world.quorumVantages = 1;
  options.quorum = 2;
  options.hedge = true;

  options.classifyThreads = 1;
  const auto serial = scenarios::runPaperCampaign(options);
  options.classifyThreads = 4;
  const auto pooled = scenarios::runPaperCampaign(options);
  EXPECT_EQ(serial.digestHex(), pooled.digestHex());
  EXPECT_EQ(serial.table4Blocked, pooled.table4Blocked);
}

}  // namespace
