#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "core/identifier.h"
#include "filters/registry.h"
#include "filters/smartfilter.h"
#include "simnet/hosting.h"

namespace urlf::core {
namespace {

using filters::ProductKind;

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

/// A compact world: one censoring ISP running SmartFilter (Anonymizers +
/// Pornography blocked), one clean ISP, a hosting provider, and a lab.
class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() : world(2024) {
    world.createAs(100, "CENSOR-AS", "Censoring ISP", "SA",
                   {prefix("10.0.0.0/16")});
    world.createAs(150, "CLEAN-AS", "Clean ISP", "DE", {prefix("15.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Hosting", "US", {prefix("20.0.0.0/16")});

    censoring = &world.createIsp("Censoring ISP", "SA", {100});
    clean = &world.createIsp("Clean ISP", "DE", {150});
    world.createVantage("field-censored", "SA", censoring);
    world.createVantage("field-clean", "DE", clean);
    world.createVantage("lab", "CA", nullptr);

    vendor = std::make_unique<filters::Vendor>(ProductKind::kSmartFilter,
                                               world);
    filters::FilterPolicy policy;
    policy.blockedCategories = {
        vendor->scheme().byName("Anonymizers")->id,
        vendor->scheme().byName("Pornography")->id,
    };
    deployment = &world.makeMiddlebox<filters::SmartFilterDeployment>(
        "SF", *vendor, policy);
    deployment->installExternalSurfaces(world, 100);
    censoring->attachMiddlebox(*deployment);

    hosting = std::make_unique<simnet::HostingProvider>(world, 200);
    vendors.add(*vendor);
  }

  Confirmer makeConfirmer() { return Confirmer(world, *hosting, vendors); }

  CaseStudyConfig baseConfig() {
    CaseStudyConfig config;
    config.product = ProductKind::kSmartFilter;
    config.countryAlpha2 = "SA";
    config.ispName = "Censoring ISP";
    config.fieldVantage = "field-censored";
    config.labVantage = "lab";
    config.categoryName = "Anonymizers";
    config.profile = simnet::ContentProfile::kGlypeProxy;
    config.totalSites = 6;
    config.sitesToSubmit = 3;
    config.waitDays = 5;
    return config;
  }

  simnet::World world;
  simnet::Isp* censoring = nullptr;
  simnet::Isp* clean = nullptr;
  std::unique_ptr<filters::Vendor> vendor;
  filters::SmartFilterDeployment* deployment = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
  VendorSet vendors;
};

// ---------------------------------------------------------- Confirmer ----

TEST_F(CoreFixture, ConfirmsCensorshipInCensoringIsp) {
  auto confirmer = makeConfirmer();
  const auto result = confirmer.run(baseConfig());
  EXPECT_TRUE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 3);
  EXPECT_EQ(result.attributedToProduct, 3);
  EXPECT_EQ(result.controlBlocked, 0);
  EXPECT_EQ(result.pretestAccessibleCount, 6);
  EXPECT_EQ(result.submittedRatio(), "3/6");
  EXPECT_EQ(result.blockedRatio(), "3/3");
}

TEST_F(CoreFixture, DoesNotConfirmInCleanIsp) {
  auto confirmer = makeConfirmer();
  auto config = baseConfig();
  config.ispName = "Clean ISP";
  config.fieldVantage = "field-clean";
  const auto result = confirmer.run(config);
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);
}

TEST_F(CoreFixture, DoesNotConfirmWhenIspIgnoresTheCategory) {
  // Challenge 1: submitting under a category the ISP does not block.
  deployment->policy().blockedCategories = {
      vendor->scheme().byName("Pornography")->id};
  auto confirmer = makeConfirmer();
  const auto result = confirmer.run(baseConfig());  // submits Anonymizers
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);
}

TEST_F(CoreFixture, RetestBeforeReviewWindowFails) {
  auto confirmer = makeConfirmer();
  auto config = baseConfig();
  config.waitDays = 1;  // vendor reviews take 3-5 days
  const auto result = confirmer.run(config);
  EXPECT_FALSE(result.confirmed);
}

TEST_F(CoreFixture, AdultImageProfileTestsBenignPath) {
  auto confirmer = makeConfirmer();
  auto config = baseConfig();
  config.categoryName = "Pornography";
  config.profile = simnet::ContentProfile::kAdultImage;
  const auto result = confirmer.run(config);
  EXPECT_TRUE(result.confirmed);
  for (const auto& url : result.submittedUrls)
    EXPECT_TRUE(url.ends_with("/benign.jpg")) << url;
}

TEST_F(CoreFixture, DateLabelReflectsClock) {
  world.clock().advanceHours(util::SimTime::fromDate({2012, 9, 10}) -
                             world.now());
  auto confirmer = makeConfirmer();
  const auto result = confirmer.run(baseConfig());
  EXPECT_EQ(result.dateLabel, "9/2012");
}

TEST_F(CoreFixture, ValidatesConfig) {
  auto confirmer = makeConfirmer();
  auto badVantage = baseConfig();
  badVantage.fieldVantage = "nope";
  EXPECT_THROW((void)confirmer.run(badVantage), std::invalid_argument);

  auto badCategory = baseConfig();
  badCategory.categoryName = "No Such Category";
  EXPECT_THROW((void)confirmer.run(badCategory), std::invalid_argument);

  auto badSplit = baseConfig();
  badSplit.sitesToSubmit = 99;
  EXPECT_THROW((void)confirmer.run(badSplit), std::invalid_argument);

  CaseStudyConfig missingVendor = baseConfig();
  missingVendor.product = ProductKind::kWebsense;  // not in VendorSet
  EXPECT_THROW((void)confirmer.run(missingVendor), std::invalid_argument);
}

TEST_F(CoreFixture, StrippedBrandingBlocksButDoesNotAttribute) {
  deployment->policy().stripBranding = true;
  auto confirmer = makeConfirmer();
  const auto result = confirmer.run(baseConfig());
  EXPECT_EQ(result.submittedBlocked, 3);      // censorship is visible
  EXPECT_EQ(result.attributedToProduct, 0);   // but not attributable
  EXPECT_FALSE(result.confirmed);
}

TEST_F(CoreFixture, VendorSetLookup) {
  EXPECT_TRUE(vendors.has(ProductKind::kSmartFilter));
  EXPECT_FALSE(vendors.has(ProductKind::kNetsweeper));
  EXPECT_EQ(&vendors.get(ProductKind::kSmartFilter), vendor.get());
  EXPECT_THROW((void)vendors.get(ProductKind::kNetsweeper),
               std::invalid_argument);
}

// --------------------------------------------------------- Identifier ----

TEST_F(CoreFixture, IdentifierFindsTheDeployment) {
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);

  Identifier identifier(world, index,
                        fingerprint::Engine::withBuiltinSignatures(), geo,
                        whois);
  const auto installations = identifier.identify(ProductKind::kSmartFilter);
  ASSERT_EQ(installations.size(), 1u);
  EXPECT_EQ(installations[0].ip, deployment->serviceIp());
  EXPECT_EQ(installations[0].countryAlpha2, "SA");
  ASSERT_TRUE(installations[0].asn);
  EXPECT_EQ(installations[0].asn->asn, 100u);
  EXPECT_GE(installations[0].certainty, 0.5);
  EXPECT_FALSE(installations[0].evidence.empty());
}

TEST_F(CoreFixture, IdentifierFindsNothingForAbsentProducts) {
  const auto geo = world.buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  Identifier identifier(world, index,
                        fingerprint::Engine::withBuiltinSignatures(), geo,
                        world.buildAsnDatabase());
  EXPECT_TRUE(identifier.identify(ProductKind::kWebsense).empty());
  EXPECT_TRUE(identifier.identify(ProductKind::kNetsweeper).empty());
}

TEST_F(CoreFixture, ShodanKeywordsMatchTable2) {
  const auto blueCoat = Identifier::shodanKeywords(ProductKind::kBlueCoat);
  EXPECT_EQ(blueCoat, (std::vector<std::string>{"proxysg", "cfru="}));
  const auto netsweeper = Identifier::shodanKeywords(ProductKind::kNetsweeper);
  EXPECT_EQ(netsweeper.size(), 4u);
  const auto websense = Identifier::shodanKeywords(ProductKind::kWebsense);
  EXPECT_EQ(websense,
            (std::vector<std::string>{"blockpage.cgi", "gateway websense"}));
}

TEST_F(CoreFixture, CountriesByProductAggregation) {
  std::map<ProductKind, std::vector<Installation>> all;
  Installation a;
  a.countryAlpha2 = "SA";
  Installation b;
  b.countryAlpha2 = "AE";
  Installation c;
  c.countryAlpha2 = "SA";
  all[ProductKind::kSmartFilter] = {a, b, c};
  const auto countries = Identifier::countriesByProduct(all);
  EXPECT_EQ(countries.at(ProductKind::kSmartFilter),
            (std::set<std::string>{"AE", "SA"}));
}

// ------------------------------------------------------ Characterizer ----

TEST_F(CoreFixture, CharacterizerTalliesByOniCategory) {
  // Two proxy sites (one categorized by the vendor, one not) and one benign
  // site.
  const auto blockedProxy =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor->masterDb().addHost(blockedProxy.hostname,
                             vendor->scheme().byName("Anonymizers")->id);
  const auto openProxy =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  const auto benign =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);

  measure::TestList global{
      "global",
      {{"http://" + blockedProxy.hostname + "/", "Anonymizers and Proxies"},
       {"http://" + openProxy.hostname + "/", "Anonymizers and Proxies"},
       {"http://" + benign.hostname + "/", "Popular Culture"}}};
  measure::TestList local{"local-sa", {}};

  Characterizer characterizer(world);
  const auto result =
      characterizer.characterize("field-censored", "lab", global, local);

  EXPECT_EQ(result.ispName, "Censoring ISP");
  EXPECT_EQ(result.countryAlpha2, "SA");
  ASSERT_TRUE(result.attributedProduct);
  EXPECT_EQ(*result.attributedProduct, ProductKind::kSmartFilter);

  const auto& proxies = result.cells.at("Anonymizers and Proxies");
  EXPECT_EQ(proxies.tested, 2);
  EXPECT_EQ(proxies.blocked, 1);
  const auto& culture = result.cells.at("Popular Culture");
  EXPECT_EQ(culture.tested, 1);
  EXPECT_EQ(culture.blocked, 0);
  EXPECT_TRUE(result.categoryBlocked("Anonymizers and Proxies"));
  EXPECT_FALSE(result.categoryBlocked("Popular Culture"));
  EXPECT_FALSE(result.categoryBlocked("No Such Category"));
  EXPECT_EQ(result.results.size(), 3u);
}

TEST_F(CoreFixture, CharacterizerNoBlockingNoAttribution) {
  const auto benign =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  measure::TestList global{
      "global", {{"http://" + benign.hostname + "/", "Popular Culture"}}};
  Characterizer characterizer(world);
  const auto result = characterizer.characterize("field-clean", "lab", global,
                                                 {"local", {}});
  EXPECT_FALSE(result.attributedProduct);
}

TEST_F(CoreFixture, CharacterizerRepeatedRunsCatchFlakyBlocking) {
  deployment->policy().offlineProbability = 0.6;
  const auto blockedProxy =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor->masterDb().addHost(blockedProxy.hostname,
                             vendor->scheme().byName("Anonymizers")->id);
  measure::TestList global{
      "global",
      {{"http://" + blockedProxy.hostname + "/", "Anonymizers and Proxies"}}};

  Characterizer characterizer(world);
  // With 12 runs the probability of never observing the block is ~0.2%.
  const auto result = characterizer.characterize("field-censored", "lab",
                                                 global, {"local", {}}, 12);
  EXPECT_TRUE(result.categoryBlocked("Anonymizers and Proxies"));
}

TEST_F(CoreFixture, CharacterizerRejectsUnknownVantage) {
  Characterizer characterizer(world);
  EXPECT_THROW((void)characterizer.characterize("nope", "lab", {"g", {}},
                                                {"l", {}}),
               std::invalid_argument);
}

TEST(Table4ColumnsTest, SixColumns) {
  EXPECT_EQ(table4Categories().size(), 6u);
  EXPECT_EQ(table4Categories().front(), "Media Freedom");
}

}  // namespace
}  // namespace urlf::core
