// Longitudinal monitoring (§1's motivation): diffing identification runs
// across time to see deployments appear, vanish, and move.
#include <gtest/gtest.h>

#include "core/monitor.h"
#include "filters/netsweeper.h"
#include "filters/smartfilter.h"
#include "scenarios/paper_world.h"

namespace urlf::core {
namespace {

using filters::ProductKind;

Installation makeInstallation(ProductKind product, const char* ip,
                              const char* country) {
  Installation out;
  out.product = product;
  out.ip = net::Ipv4Addr::parse(ip).value();
  out.countryAlpha2 = country;
  return out;
}

// ------------------------------------------------------------ Unit -------

TEST(DiffTest, EmptyRunsEmptyDiff) {
  const auto diff = diffInstallations({}, {});
  EXPECT_TRUE(diff.empty());
  EXPECT_TRUE(diff.persisted.empty());
}

TEST(DiffTest, AppearedVanishedPersisted) {
  const std::vector<Installation> baseline{
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.1", "YE"),
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.2", "QA"),
  };
  const std::vector<Installation> current{
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.2", "QA"),
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.3", "AE"),
  };
  const auto diff = diffInstallations(baseline, current);
  ASSERT_EQ(diff.appeared.size(), 1u);
  EXPECT_EQ(diff.appeared[0].ip.toString(), "10.0.0.3");
  ASSERT_EQ(diff.vanished.size(), 1u);
  EXPECT_EQ(diff.vanished[0].ip.toString(), "10.0.0.1");
  ASSERT_EQ(diff.persisted.size(), 1u);
  EXPECT_EQ(diff.persisted[0]->ip.toString(), "10.0.0.2");
  EXPECT_EQ(diff.persisted[0], &current[0]);  // pointer into `current`
  EXPECT_FALSE(diff.empty());
}

TEST(DiffTest, RelocationDetected) {
  const std::vector<Installation> baseline{
      makeInstallation(ProductKind::kBlueCoat, "10.0.0.1", "SY")};
  const std::vector<Installation> current{
      makeInstallation(ProductKind::kBlueCoat, "10.0.0.1", "LB")};
  const auto diff = diffInstallations(baseline, current);
  ASSERT_EQ(diff.relocated.size(), 1u);
  EXPECT_EQ(diff.relocated[0].first->countryAlpha2, "SY");
  EXPECT_EQ(diff.relocated[0].second->countryAlpha2, "LB");
  EXPECT_TRUE(diff.persisted.empty());
  EXPECT_FALSE(diff.empty());
}

TEST(DiffTest, IdenticalRunsAreQuiet) {
  const std::vector<Installation> run{
      makeInstallation(ProductKind::kWebsense, "10.0.0.1", "US")};
  const auto diff = diffInstallations(run, run);
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.persisted.size(), 1u);
}

TEST(DiffTest, OutputIsIpAscendingAndDeduped) {
  const std::vector<Installation> baseline{
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.9", "YE"),
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.1", "YE"),
  };
  const std::vector<Installation> current{
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.8", "QA"),
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.2", "AE"),
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.2", "SA"),
  };
  const auto diff = diffInstallations(baseline, current);
  ASSERT_EQ(diff.appeared.size(), 2u);
  EXPECT_EQ(diff.appeared[0].ip.toString(), "10.0.0.2");
  EXPECT_EQ(diff.appeared[0].countryAlpha2, "AE");  // first occurrence wins
  EXPECT_EQ(diff.appeared[1].ip.toString(), "10.0.0.8");
  ASSERT_EQ(diff.vanished.size(), 2u);
  EXPECT_EQ(diff.vanished[0].ip.toString(), "10.0.0.1");
  EXPECT_EQ(diff.vanished[1].ip.toString(), "10.0.0.9");
}

TEST(DiffTest, DiffAllCoversProductsInEitherRun) {
  std::map<ProductKind, std::vector<Installation>> baseline;
  baseline[ProductKind::kNetsweeper] = {
      makeInstallation(ProductKind::kNetsweeper, "10.0.0.1", "YE")};
  std::map<ProductKind, std::vector<Installation>> current;
  current[ProductKind::kWebsense] = {
      makeInstallation(ProductKind::kWebsense, "10.0.0.9", "US")};

  const auto all = diffAll(baseline, current);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at(ProductKind::kNetsweeper).vanished.size(), 1u);
  EXPECT_EQ(all.at(ProductKind::kWebsense).appeared.size(), 1u);
}

// ----------------------------------------------------- End to end --------

class MonitorFixture : public ::testing::Test {
 protected:
  MonitorFixture() : paper() {}

  std::map<ProductKind, std::vector<Installation>> identifyNow() {
    auto& world = paper.world();
    const auto geo = world.buildGeoDatabase();
    const auto whois = world.buildAsnDatabase();
    scan::BannerIndex index;
    index.crawl(world, geo);
    Identifier identifier(world, index,
                          fingerprint::Engine::withBuiltinSignatures(), geo,
                          whois);
    return identifier.identifyAll();
  }

  scenarios::PaperWorld paper;
};

TEST_F(MonitorFixture, StableWorldYieldsQuietDiff) {
  const auto first = identifyNow();
  paper.world().clock().advanceDays(30);
  const auto second = identifyNow();
  for (const auto& [product, diff] : diffAll(first, second))
    EXPECT_TRUE(diff.empty()) << filters::toString(product);
}

TEST_F(MonitorFixture, HidingADeploymentShowsAsVanished) {
  const auto baseline = identifyNow();

  // The Du operator firewalls the WebAdmin console between scans.
  const auto duIp = paper.duNetsweeper().serviceIp();
  paper.world().unbind(duIp, 8080);

  const auto current = identifyNow();
  const auto diff = diffAll(baseline, current).at(ProductKind::kNetsweeper);
  ASSERT_EQ(diff.vanished.size(), 1u);
  EXPECT_EQ(diff.vanished[0].ip, duIp);
  EXPECT_TRUE(diff.appeared.empty());
}

TEST_F(MonitorFixture, NewDeploymentShowsAsAppeared) {
  const auto baseline = identifyNow();

  // A new SmartFilter turns up in a previously clean network.
  auto& world = paper.world();
  world.createAs(64600, "NEW-ISP", "Newly filtering ISP", "OM",
                 {net::IpPrefix::parse("44.0.0.0/16").value()});
  filters::FilterPolicy policy;
  policy.blockedCategories = {1};
  auto& deployment = world.makeMiddlebox<filters::SmartFilterDeployment>(
      "Oman SmartFilter", paper.vendor(ProductKind::kSmartFilter), policy);
  deployment.installExternalSurfaces(world, 64600);

  const auto current = identifyNow();
  const auto diff = diffAll(baseline, current).at(ProductKind::kSmartFilter);
  ASSERT_EQ(diff.appeared.size(), 1u);
  EXPECT_EQ(diff.appeared[0].ip, deployment.serviceIp());
  EXPECT_EQ(diff.appeared[0].countryAlpha2, "OM");
  EXPECT_TRUE(diff.vanished.empty());
}

}  // namespace
}  // namespace urlf::core
