#include <gtest/gtest.h>

#include "filters/netsweeper.h"
#include "filters/vendor.h"
#include "scan/banner_index.h"
#include "simnet/origin_server.h"

namespace urlf::scan {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

class ScanFixture : public ::testing::Test {
 protected:
  ScanFixture() : world(55) {
    world.createAs(100, "AS-SA", "Saudi ISP", "SA", {prefix("10.0.0.0/16")});
    world.createAs(200, "AS-US", "US hosting", "US", {prefix("20.0.0.0/16")});
    geo = world.buildGeoDatabase();

    addServer(100, "saudi-site.example", "Saudi Portal",
              "<h1>portal content</h1>", true);
    addServer(200, "us-site.example", "US Blog",
              "<h1>my webadmin tutorial</h1>", true);
    addServer(200, "hidden.example", "Hidden Box", "<h1>secret webadmin</h1>",
              false);
  }

  void addServer(std::uint32_t asn, const std::string& host,
                 const std::string& title, const std::string& body,
                 bool visible) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = title;
    page.body = body;
    server.setPage("/", page);
    const auto ip = world.allocateAddress(asn);
    world.bind(ip, 80, server, visible);
    world.registerHostname(host, ip);
  }

  simnet::World world;
  geo::GeoDatabase geo;
};

TEST_F(ScanFixture, CrawlIndexesOnlyVisibleSurfaces) {
  BannerIndex index;
  index.crawl(world, geo);
  EXPECT_EQ(index.size(), 2u);  // hidden.example is not crawled
}

TEST_F(ScanFixture, RecordsCarryGeoAndTitle) {
  BannerIndex index;
  index.crawl(world, geo);
  int saudi = 0;
  for (const auto& record : index.records()) {
    EXPECT_EQ(record.statusCode, 200);
    EXPECT_FALSE(record.title.empty());
    if (record.countryAlpha2 == "SA") ++saudi;
  }
  EXPECT_EQ(saudi, 1);
}

TEST_F(ScanFixture, KeywordSearchIsCaseInsensitive) {
  BannerIndex index;
  index.crawl(world, geo);
  EXPECT_EQ(index.search({"WEBADMIN", std::nullopt}).size(), 1u);
  EXPECT_EQ(index.search({"webadmin", std::nullopt}).size(), 1u);
  EXPECT_EQ(index.search({"nonexistent-keyword", std::nullopt}).size(), 0u);
}

TEST_F(ScanFixture, CountryFacetRestricts) {
  BannerIndex index;
  index.crawl(world, geo);
  EXPECT_EQ(index.search({"portal", "SA"}).size(), 1u);
  EXPECT_EQ(index.search({"portal", "US"}).size(), 0u);
  EXPECT_EQ(index.search({"webadmin", "US"}).size(), 1u);
}

TEST_F(ScanFixture, SearchMatchesHeadersToo) {
  BannerIndex index;
  index.crawl(world, geo);
  // Origin servers stamp a Server header.
  EXPECT_GE(index.search({"Apache", std::nullopt}).size(), 2u);
}

TEST_F(ScanFixture, SearchAllDeduplicates) {
  BannerIndex index;
  index.crawl(world, geo);
  const auto hits = index.searchAll({{"webadmin", std::nullopt},
                                     {"WEBADMIN", std::nullopt},
                                     {"webadmin", "US"}});
  EXPECT_EQ(hits.size(), 1u);
}

TEST_F(ScanFixture, BodySnippetIsCapped) {
  addServer(200, "big.example", "Big",
            std::string(10000, 'x'), true);
  BannerIndex index;
  index.crawl(world, geo, /*bodySnippetLimit=*/512);
  for (const auto& record : index.records())
    EXPECT_LE(record.body.size(), 512u);
}

TEST_F(ScanFixture, RecrawlReplacesIndex) {
  BannerIndex index;
  index.crawl(world, geo);
  const auto before = index.size();
  index.crawl(world, geo);
  EXPECT_EQ(index.size(), before);
}

TEST_F(ScanFixture, SearchableTextContainsStatusLine) {
  BannerIndex index;
  index.crawl(world, geo);
  EXPECT_FALSE(index.records().empty());
  EXPECT_NE(index.records()[0].searchableText().find("HTTP/1.1 200"),
            std::string::npos);
}

TEST_F(ScanFixture, CensusSweepFindsSameSurfacesAsCrawl) {
  BannerIndex index;
  index.crawl(world, geo);

  CensusScanner census({80});
  const auto swept = census.sweep(world, geo);
  EXPECT_EQ(swept.size(), index.size());
}

TEST_F(ScanFixture, CensusSweepHonoursPortList) {
  CensusScanner census({8080});
  EXPECT_TRUE(census.sweep(world, geo).empty());
}

TEST_F(ScanFixture, CensusSweepCapsAddressesPerPrefix) {
  // With a cap of 1, only network addresses are probed (nothing is bound at
  // .0), so the sweep finds nothing.
  CensusScanner census({80});
  EXPECT_TRUE(census.sweep(world, geo, /*maxAddressesPerPrefix=*/1).empty());
}

TEST_F(ScanFixture, CensusFindsNetsweeperConsoleOnPort8080) {
  filters::Vendor vendor(filters::ProductKind::kNetsweeper, world);
  filters::FilterPolicy policy;
  auto& deployment = world.makeMiddlebox<filters::NetsweeperDeployment>(
      "NS", vendor, policy);
  deployment.installExternalSurfaces(world, 100);

  CensusScanner census({8080});
  const auto swept = census.sweep(world, geo);
  ASSERT_EQ(swept.size(), 1u);
  EXPECT_EQ(swept[0].port, 8080);
  EXPECT_EQ(swept[0].countryAlpha2, "SA");
}

TEST_F(ScanFixture, GeoErrorRatePropagatesIntoBanners) {
  auto noisyGeo = world.buildGeoDatabase(/*errorRate=*/1.0);
  BannerIndex index;
  index.crawl(world, noisyGeo);
  // With error rate 1 and two countries, every banner is mislocated.
  for (const auto& record : index.records()) {
    const auto truth = noisyGeo.lookupTruth(record.ip);
    ASSERT_TRUE(truth);
    EXPECT_NE(record.countryAlpha2, *truth);
  }
}

}  // namespace
}  // namespace urlf::scan
