// Admission control for the resident campaign server (DESIGN.md §4.6).
// Every decision happens at submit time on the caller's thread under one
// lock, so shedding is deterministic at any worker-pool width — these tests
// drive capacity to the edge with hold sessions (worker slots parked until
// released) and assert exact shed behavior with no sleeps or polling.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "http/message.h"
#include "report/json.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace urlf;
using serve::AdmissionController;
using Decision = serve::AdmissionController::Decision;
using report::Json;

http::Request post(const std::string& path, const Json& body) {
  http::Request request;
  request.method = "POST";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  request.headers.set("Content-Type", "application/json");
  request.body = body.dump();
  return request;
}

Json holdBody(const std::string& token) {
  Json body = Json::object();
  body["kind"] = Json::string("hold");
  body["token"] = Json::string(token);
  return body;
}

TEST(AdmissionControllerTest, DeterministicDecisionSequence) {
  AdmissionController admission(/*maxInFlight=*/2, /*maxQueued=*/1);

  EXPECT_EQ(admission.tryAdmit(), Decision::kRun);
  EXPECT_EQ(admission.tryAdmit(), Decision::kRun);
  EXPECT_EQ(admission.tryAdmit(), Decision::kQueue);
  EXPECT_EQ(admission.tryAdmit(), Decision::kShed);
  EXPECT_EQ(admission.tryAdmit(), Decision::kShed);

  auto stats = admission.stats();
  EXPECT_EQ(stats.inFlight, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 0u);

  // One in-flight session finishes; the queued one starts; a new arrival
  // takes the freed queue slot instead of being shed.
  admission.onComplete();
  admission.onStart();
  EXPECT_EQ(admission.tryAdmit(), Decision::kQueue);

  stats = admission.stats();
  EXPECT_EQ(stats.inFlight, 2u);
  EXPECT_EQ(stats.queued, 1u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(AdmissionControllerTest, ZeroQueueShedsImmediatelyAtCapacity) {
  AdmissionController admission(/*maxInFlight=*/1, /*maxQueued=*/0);
  EXPECT_EQ(admission.tryAdmit(), Decision::kRun);
  EXPECT_EQ(admission.tryAdmit(), Decision::kShed);
  admission.onComplete();
  EXPECT_EQ(admission.tryAdmit(), Decision::kRun);
}

TEST(ServeAdmissionTest, ServerShedsPastCapacityWithDistinctStatus) {
  // workers=2 in-flight slots + 1 queue slot = 3 admitted holds; the 4th
  // must shed synchronously with the marker body.
  serve::CampaignServer server({.workers = 2, .maxQueued = 1});

  std::vector<std::promise<http::Response>> slots(3);
  std::vector<std::future<http::Response>> futures;
  for (auto& slot : slots) futures.push_back(slot.get_future());

  const std::string tokens[] = {"a", "b", "c"};
  for (std::size_t i = 0; i < 3; ++i) {
    server.submit(post("/v1/session", holdBody(tokens[i])),
                  [&slot = slots[i]](http::Response response) {
                    slot.set_value(std::move(response));
                  });
  }
  // All admission already happened on THIS thread inside submit — no need
  // to wait for workers to pick the holds up.
  auto stats = server.stats();
  EXPECT_EQ(stats.admission.admitted, 3u);
  EXPECT_EQ(stats.admission.shed, 0u);

  std::promise<http::Response> shedSlot;
  auto shedFuture = shedSlot.get_future();
  server.submit(post("/v1/session", holdBody("d")),
                [&shedSlot](http::Response response) {
                  shedSlot.set_value(std::move(response));
                });

  // The shed callback fires inside submit, before any release.
  const auto shed = shedFuture.get();
  EXPECT_EQ(shed.statusCode, 503);
  const auto shedBody = Json::parse(shed.body);
  ASSERT_TRUE(shedBody.has_value());
  EXPECT_EQ(*shedBody->find("error")->asString(), serve::kShedMarker);

  for (const auto& token : tokens) server.releaseHold(token);
  for (auto& future : futures) {
    const auto response = future.get();
    EXPECT_EQ(response.statusCode, 200) << response.body;
  }
  server.drain();

  stats = server.stats();
  EXPECT_EQ(stats.holdsCompleted, 3u);
  EXPECT_EQ(stats.admission.admitted, 3u);
  EXPECT_EQ(stats.admission.shed, 1u);
  EXPECT_EQ(stats.admission.completed, 3u);
  EXPECT_EQ(stats.admission.inFlight, 0u);
  EXPECT_EQ(stats.admission.queued, 0u);
}

TEST(ServeAdmissionTest, PreReleasedHoldsDoNotDeadlockTheQueue) {
  // Releasing before the hold is even submitted must still let it through:
  // release order cannot be assumed when clients race the queue.
  serve::CampaignServer server({.workers = 1, .maxQueued = 2});
  server.releaseHold("early");

  std::promise<http::Response> slot;
  auto future = slot.get_future();
  server.submit(post("/v1/session", holdBody("early")),
                [&slot](http::Response response) {
                  slot.set_value(std::move(response));
                });
  const auto response = future.get();
  EXPECT_EQ(response.statusCode, 200) << response.body;
  server.drain();
  EXPECT_EQ(server.stats().holdsCompleted, 1u);
}

TEST(ServeAdmissionTest, CapacityRecoversAfterDrain) {
  serve::CampaignServer server({.workers = 1, .maxQueued = 0});

  std::promise<http::Response> first;
  auto firstFuture = first.get_future();
  server.submit(post("/v1/session", holdBody("one")),
                [&first](http::Response response) {
                  first.set_value(std::move(response));
                });

  // Full: next submit sheds.
  std::promise<http::Response> second;
  auto secondFuture = second.get_future();
  server.submit(post("/v1/session", holdBody("two")),
                [&second](http::Response response) {
                  second.set_value(std::move(response));
                });
  EXPECT_EQ(secondFuture.get().statusCode, 503);

  server.releaseHold("one");
  EXPECT_EQ(firstFuture.get().statusCode, 200);
  server.drain();

  // The freed slot admits again — shedding is load, not a latch.
  server.releaseHold("three");
  std::promise<http::Response> third;
  auto thirdFuture = third.get_future();
  server.submit(post("/v1/session", holdBody("three")),
                [&third](http::Response response) {
                  third.set_value(std::move(response));
                });
  EXPECT_EQ(thirdFuture.get().statusCode, 200);
  server.drain();

  const auto stats = server.stats();
  EXPECT_EQ(stats.holdsCompleted, 2u);
  EXPECT_EQ(stats.admission.shed, 1u);
}

TEST(ServeAdmissionTest, MalformedSessionsAre400NotShed) {
  serve::CampaignServer server({.workers = 1});
  Json body = Json::object();
  body["kind"] = Json::string("campaign");  // no snapshot
  const auto response = server.handle(post("/v1/session", body));
  EXPECT_EQ(response.statusCode, 400);

  Json nonsense = Json::object();
  nonsense["kind"] = Json::string("no-such-kind");
  EXPECT_EQ(server.handle(post("/v1/session", nonsense)).statusCode, 400);

  const auto stats = server.stats();
  EXPECT_EQ(stats.badRequests, 2u);
  // Malformed sessions still pass through admission (admit-then-parse keeps
  // the fast path lock-free of parsing), but they complete immediately.
  EXPECT_EQ(stats.admission.inFlight, 0u);
}

}  // namespace
