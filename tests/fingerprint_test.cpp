#include <gtest/gtest.h>

#include "filters/registry.h"
#include "fingerprint/engine.h"
#include "http/html.h"
#include "simnet/origin_server.h"

namespace urlf::fingerprint {
namespace {

using filters::ProductKind;

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

Observation makeObservation(int status = 200) {
  Observation obs;
  obs.ip = net::Ipv4Addr(10, 0, 0, 1);
  obs.port = 80;
  obs.statusCode = status;
  return obs;
}

// ------------------------------------------------------------ Matcher ----

TEST(MatcherTest, HeaderContains) {
  auto obs = makeObservation();
  obs.headers.add("Via", "1.1 gw (McAfee Web Gateway 7.2)");
  const auto matcher = Matcher::headerContains("Via", "mcafee web gateway");
  EXPECT_TRUE(matcher.match(obs));
  EXPECT_FALSE(Matcher::headerContains("Server", "mcafee").match(obs));
}

TEST(MatcherTest, HeaderContainsChecksAllValues) {
  auto obs = makeObservation();
  obs.headers.add("Via", "1.1 first");
  obs.headers.add("Via", "1.1 second (ProxySG)");
  EXPECT_TRUE(Matcher::headerContains("Via", "ProxySG").match(obs));
}

TEST(MatcherTest, TitleContains) {
  auto obs = makeObservation();
  obs.title = "Netsweeper WebAdmin - Login";
  EXPECT_TRUE(Matcher::titleContains("netsweeper").match(obs));
  EXPECT_FALSE(Matcher::titleContains("websense").match(obs));
}

TEST(MatcherTest, BodyContains) {
  auto obs = makeObservation();
  obs.body = "<h1>netsweeper webadmin</h1>";
  EXPECT_TRUE(Matcher::bodyContains("WEBADMIN").match(obs));
}

TEST(MatcherTest, LocationContains) {
  auto obs = makeObservation(302);
  obs.headers.add("Location", "http://www.cfauth.com/?cfru=aGVsbG8=");
  EXPECT_TRUE(Matcher::locationContains("www.cfauth.com").match(obs));
  EXPECT_TRUE(Matcher::locationContains("cfru=").match(obs));
  EXPECT_FALSE(Matcher::locationContains("webadmin").match(obs));
}

TEST(MatcherTest, LocationRedirectPortAndParam) {
  auto obs = makeObservation(302);
  obs.headers.add("Location",
                  "http://10.1.1.1:15871/cgi-bin/blockpage.cgi?ws-session=9");
  EXPECT_TRUE(Matcher::locationRedirect(15871, "ws-session").match(obs));
  EXPECT_FALSE(Matcher::locationRedirect(15872, "ws-session").match(obs));
  EXPECT_FALSE(Matcher::locationRedirect(15871, "other-param").match(obs));

  // Port present but parameter missing.
  auto noParam = makeObservation(302);
  noParam.headers.add("Location", "http://10.1.1.1:15871/cgi-bin/page.cgi");
  EXPECT_FALSE(Matcher::locationRedirect(15871, "ws-session").match(noParam));

  // No Location at all.
  EXPECT_FALSE(
      Matcher::locationRedirect(15871, "ws-session").match(makeObservation()));
}

TEST(MatcherTest, StatusEquals) {
  EXPECT_TRUE(Matcher::statusEquals(403).match(makeObservation(403)));
  EXPECT_FALSE(Matcher::statusEquals(403).match(makeObservation(200)));
}

TEST(MatcherTest, DescribeIsHumanReadable) {
  EXPECT_EQ(Matcher::headerContains("Via", "x").describe(),
            "header Via contains \"x\"");
  EXPECT_EQ(Matcher::locationRedirect(15871, "ws-session").describe(),
            "Location redirects to port 15871 with parameter \"ws-session\"");
}

// ------------------------------------------------------------- Engine ----

TEST(EngineTest, BuiltinSignaturesCoverAllProducts) {
  const auto engine = Engine::withBuiltinSignatures();
  std::set<ProductKind> covered;
  for (const auto& signature : engine.signatures())
    covered.insert(signature.product);
  EXPECT_EQ(covered.size(), 4u);
}

TEST(EngineTest, RecognizesSmartFilterBlockPage) {
  auto obs = makeObservation(403);
  obs.headers.add("Via", "1.1 mwg.local (McAfee Web Gateway 7.2.0.9)");
  obs.title = "McAfee Web Gateway - Notification";
  const auto matches = Engine::withBuiltinSignatures().evaluate(obs);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].product, ProductKind::kSmartFilter);
  EXPECT_DOUBLE_EQ(matches[0].certainty, 1.0);
  EXPECT_GE(matches[0].evidence.size(), 2u);
}

TEST(EngineTest, RecognizesBlueCoatCfauthRedirect) {
  auto obs = makeObservation(302);
  obs.headers.add("Location", "http://www.cfauth.com/?cfru=YQ==");
  const auto matches = Engine::withBuiltinSignatures().evaluate(obs);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].product, ProductKind::kBlueCoat);
}

TEST(EngineTest, RecognizesNetsweeperConsole) {
  auto obs = makeObservation();
  obs.title = "Netsweeper WebAdmin - Login";
  obs.headers.add("Server", "Netsweeper/5.0");
  const auto matches = Engine::withBuiltinSignatures().evaluate(obs);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].product, ProductKind::kNetsweeper);
}

TEST(EngineTest, RecognizesWebsenseRedirect) {
  auto obs = makeObservation(302);
  obs.headers.add("Location",
                  "http://10.2.2.2:15871/cgi-bin/blockpage.cgi?ws-session=77");
  const auto matches = Engine::withBuiltinSignatures().evaluate(obs);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].product, ProductKind::kWebsense);
}

TEST(EngineTest, PlainServerMatchesNothing) {
  auto obs = makeObservation();
  obs.title = "Welcome to nginx!";
  obs.headers.add("Server", "nginx/1.2.1");
  obs.body = "<h1>It works</h1>";
  EXPECT_TRUE(Engine::withBuiltinSignatures().evaluate(obs).empty());
}

TEST(EngineTest, KeywordBaitAloneStaysBelowThreshold) {
  // A page that merely *mentions* blockpage.cgi (weak rule, weight 0.45)
  // must not validate as Websense.
  auto obs = makeObservation();
  obs.title = "Blockpage tools";
  obs.body = "open-source blockpage.cgi clone";
  EXPECT_TRUE(Engine::withBuiltinSignatures().evaluate(obs).empty());
}

TEST(EngineTest, CertaintyIsMaxOfFiredRules) {
  Engine engine;
  engine.addSignature(Signature{ProductKind::kNetsweeper,
                                "test",
                                {{Matcher::bodyContains("a"), 0.6},
                                 {Matcher::bodyContains("b"), 0.9}},
                                0.5});
  auto obs = makeObservation();
  obs.body = "a and b";
  const auto matches = engine.evaluate(obs);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_DOUBLE_EQ(matches[0].certainty, 0.9);
}

TEST(EngineTest, ThresholdFiltersWeakMatches) {
  Engine engine;
  engine.addSignature(Signature{ProductKind::kNetsweeper,
                                "weak",
                                {{Matcher::bodyContains("a"), 0.3}},
                                0.5});
  auto obs = makeObservation();
  obs.body = "a";
  EXPECT_TRUE(engine.evaluate(obs).empty());
}

// ------------------------------------------------------ Active probes ----

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() : world(77) {
    world.createAs(100, "AS", "ISP", "QA", {prefix("10.0.0.0/16")});
  }
  simnet::World world;
};

TEST_F(ProbeFixture, ProbeValidatesRealDeployment) {
  filters::Vendor vendor(ProductKind::kNetsweeper, world);
  auto& deployment = world.makeMiddlebox<filters::NetsweeperDeployment>(
      "NS", vendor, filters::FilterPolicy{});
  deployment.installExternalSurfaces(world, 100);

  const auto engine = Engine::withBuiltinSignatures();
  const auto matches = engine.probe(world, deployment.serviceIp(), 8080);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].product, ProductKind::kNetsweeper);
}

TEST_F(ProbeFixture, ProbeFailsOnHiddenDeployment) {
  filters::Vendor vendor(ProductKind::kNetsweeper, world);
  filters::FilterPolicy policy;
  policy.externallyVisible = false;
  auto& deployment = world.makeMiddlebox<filters::NetsweeperDeployment>(
      "Hidden NS", vendor, policy);
  deployment.installExternalSurfaces(world, 100);

  const auto engine = Engine::withBuiltinSignatures();
  EXPECT_FALSE(Engine::observe(world, deployment.serviceIp(), 8080));
  EXPECT_TRUE(engine.probe(world, deployment.serviceIp(), 8080).empty());
}

TEST_F(ProbeFixture, ProbeOnUnboundAddressReturnsNothing) {
  const auto engine = Engine::withBuiltinSignatures();
  EXPECT_TRUE(engine.probe(world, net::Ipv4Addr(10, 0, 0, 200), 80).empty());
}

TEST_F(ProbeFixture, StripBrandingDefeatsValidation) {
  filters::Vendor vendor(ProductKind::kSmartFilter, world);
  filters::FilterPolicy policy;
  policy.stripBranding = true;
  auto& deployment = world.makeMiddlebox<filters::SmartFilterDeployment>(
      "Stripped", vendor, policy);
  deployment.installExternalSurfaces(world, 100);

  const auto engine = Engine::withBuiltinSignatures();
  // The notification service on port 80 serves the (debranded) block page.
  EXPECT_TRUE(engine.probe(world, deployment.serviceIp(), 80).empty());
}

/// Property: every product's own surfaces validate as that product and as
/// no other (signature orthogonality).
class SignatureOrthogonality : public ::testing::TestWithParam<int> {};

TEST_P(SignatureOrthogonality, OwnSurfacesOnly) {
  const auto kind = static_cast<ProductKind>(GetParam());
  simnet::World world(1000 + GetParam());
  world.createAs(100, "AS", "ISP", "AE",
                 {net::IpPrefix::parse("10.0.0.0/16").value()});
  filters::Vendor vendor(kind, world);
  auto& deployment =
      filters::makeDeployment(world, kind, "dep", vendor, {});
  deployment.installExternalSurfaces(world, 100);

  const auto engine = Engine::withBuiltinSignatures();
  bool anyMatch = false;
  for (const auto& surface : world.externalSurfaces()) {
    for (const auto& match :
         engine.probe(world, surface.ip, surface.port)) {
      EXPECT_EQ(match.product, kind)
          << "surface port " << surface.port << " cross-matched";
      anyMatch = true;
    }
  }
  EXPECT_TRUE(anyMatch) << "no surface of the product validated";
}

INSTANTIATE_TEST_SUITE_P(AllProducts, SignatureOrthogonality,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace urlf::fingerprint
