// The censorship mechanisms the paper's method deliberately distinguishes
// itself from (§4.1): TCP-reset firewalls, blackholing, and DNS tampering.
// These produce blocked-but-unattributable measurements — demonstrating why
// block-page products are the tractable confirmation target — plus the
// RepeatedTester statistics utility.
#include <gtest/gtest.h>

#include "measure/repeated.h"
#include "simnet/firewall.h"
#include "simnet/hosting.h"
#include "simnet/origin_server.h"
#include "simnet/transport.h"

namespace urlf {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

class OtherCensorshipFixture : public ::testing::Test {
 protected:
  OtherCensorshipFixture() : world(777) {
    world.createAs(100, "ISP-AS", "Firewalled ISP", "CN",
                   {prefix("10.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Hosting", "US", {prefix("20.0.0.0/16")});
    isp = &world.createIsp("Firewalled ISP", "CN", {100});
    field = &world.createVantage("field", "CN", isp);
    lab = &world.createVantage("lab", "CA", nullptr);
    hosting = std::make_unique<simnet::HostingProvider>(world, 200);
  }

  simnet::World world;
  simnet::Isp* isp = nullptr;
  simnet::VantagePoint* field = nullptr;
  simnet::VantagePoint* lab = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
};

// ---------------------------------------------------- Keyword firewall ----

TEST_F(OtherCensorshipFixture, FirewallResetsMatchingTraffic) {
  auto& firewall = world.makeMiddlebox<simnet::KeywordResetFirewall>(
      "national-firewall", std::vector<std::string>{"falun", "proxy"});
  isp->attachMiddlebox(firewall);

  const auto banned = hosting->createDomain("falungongnews.org",
                                            simnet::ContentProfile::kNews);
  const auto fine =
      hosting->createDomain("cookingnews.org", simnet::ContentProfile::kNews);

  simnet::Transport transport(world);
  EXPECT_EQ(transport.fetchUrl(*field, "http://" + banned.hostname + "/")
                .outcome,
            simnet::FetchOutcome::kReset);
  EXPECT_EQ(
      transport.fetchUrl(*field, "http://" + fine.hostname + "/").outcome,
      simnet::FetchOutcome::kOk);
  EXPECT_EQ(firewall.resetsInjected(), 1u);

  // The lab is unaffected.
  EXPECT_EQ(transport.fetchUrl(*lab, "http://" + banned.hostname + "/")
                .outcome,
            simnet::FetchOutcome::kOk);
}

TEST_F(OtherCensorshipFixture, FirewallKeywordMatchesPathToo) {
  auto& firewall = world.makeMiddlebox<simnet::KeywordResetFirewall>(
      "fw", std::vector<std::string>{"forbidden-topic"});
  isp->attachMiddlebox(firewall);
  const auto site =
      hosting->createDomain("plainsite.org", simnet::ContentProfile::kBenign);
  simnet::Transport transport(world);
  EXPECT_EQ(transport
                .fetchUrl(*field, "http://" + site.hostname +
                                      "/forbidden-topic.html")
                .outcome,
            simnet::FetchOutcome::kReset);
  EXPECT_EQ(
      transport.fetchUrl(*field, "http://" + site.hostname + "/").outcome,
      simnet::FetchOutcome::kOk);
}

TEST_F(OtherCensorshipFixture, DropModeLooksLikeTimeout) {
  auto& firewall = world.makeMiddlebox<simnet::KeywordResetFirewall>(
      "fw", std::vector<std::string>{"proxy"}, /*dropInsteadOfReset=*/true);
  isp->attachMiddlebox(firewall);
  const auto site =
      hosting->createDomain("myproxysite.org", simnet::ContentProfile::kBenign);
  simnet::Transport transport(world);
  EXPECT_EQ(
      transport.fetchUrl(*field, "http://" + site.hostname + "/").outcome,
      simnet::FetchOutcome::kTimeout);
}

TEST_F(OtherCensorshipFixture, FirewallBlocksAreUnattributable) {
  // The measurement client records a block, but there is no block page and
  // therefore no product attribution — the ambiguity §4.1 notes.
  auto& firewall = world.makeMiddlebox<simnet::KeywordResetFirewall>(
      "fw", std::vector<std::string>{"glype"});
  isp->attachMiddlebox(firewall);
  const auto site = hosting->createDomain(
      "glypeproxyhub.org", simnet::ContentProfile::kGlypeProxy);

  measure::Client client(world, *field, *lab);
  const auto result = client.testUrl("http://" + site.hostname + "/");
  EXPECT_EQ(result.verdict, measure::Verdict::kBlockedOther);
  EXPECT_FALSE(result.blockPage);
}

// -------------------------------------------------------- DNS override ----

TEST_F(OtherCensorshipFixture, DnsOverrideRedirectsFieldOnly) {
  // The censor points the hostname at a sinkhole serving a warning page.
  auto& sinkhole = world.makeEndpoint<simnet::OriginServer>("sinkhole");
  simnet::Page warning;
  warning.title = "Blocked by order of the authority";
  warning.body = "<h1>This website is not available.</h1>";
  sinkhole.setPage("/", warning);
  sinkhole.setCatchAll(warning);
  const auto sinkholeIp = world.allocateAddress(100);
  world.bind(sinkholeIp, 80, sinkhole, false);

  const auto site =
      hosting->createDomain("bannednews.org", simnet::ContentProfile::kNews);
  isp->addDnsOverride("bannednews.org", sinkholeIp);

  simnet::Transport transport(world);
  const auto fieldFetch =
      transport.fetchUrl(*field, "http://bannednews.org/");
  ASSERT_TRUE(fieldFetch.ok());
  EXPECT_NE(fieldFetch.response->body.find("not available"),
            std::string::npos);

  const auto labFetch = transport.fetchUrl(*lab, "http://bannednews.org/");
  ASSERT_TRUE(labFetch.ok());
  EXPECT_NE(labFetch.response->body.find("Independent News"),
            std::string::npos);
}

TEST_F(OtherCensorshipFixture, DnsOverrideYieldsInconclusiveVerdict) {
  // Same status (200) but different content, not a known block page: the
  // client cannot attribute it — kInconclusive.
  auto& sinkhole = world.makeEndpoint<simnet::OriginServer>("sinkhole");
  simnet::Page warning;
  warning.title = "Notice";
  warning.body = "<p>unavailable</p>";
  sinkhole.setPage("/", warning);
  const auto sinkholeIp = world.allocateAddress(100);
  world.bind(sinkholeIp, 80, sinkhole, false);

  const auto site =
      hosting->createDomain("bannedblog.org", simnet::ContentProfile::kNews);
  isp->addDnsOverride("bannedblog.org", sinkholeIp);

  measure::Client client(world, *field, *lab);
  const auto result = client.testUrl("http://bannedblog.org/");
  EXPECT_EQ(result.verdict, measure::Verdict::kInconclusive);
}

TEST_F(OtherCensorshipFixture, DnsOverrideToUnboundAddressIsInconclusive) {
  // Blackhole resolution: points at an address with nothing listening.
  const auto site =
      hosting->createDomain("nulled.org", simnet::ContentProfile::kNews);
  isp->addDnsOverride("nulled.org", net::Ipv4Addr(10, 0, 99, 99));

  measure::Client client(world, *field, *lab);
  const auto result = client.testUrl("http://nulled.org/");
  EXPECT_EQ(result.verdict, measure::Verdict::kInconclusive);
}

TEST_F(OtherCensorshipFixture, DnsOverrideRemovable) {
  const auto site =
      hosting->createDomain("temporarily.org", simnet::ContentProfile::kNews);
  isp->addDnsOverride("temporarily.org", net::Ipv4Addr(10, 0, 99, 99));
  EXPECT_TRUE(isp->dnsOverride("temporarily.org"));
  isp->removeDnsOverride("temporarily.org");
  EXPECT_FALSE(isp->dnsOverride("temporarily.org"));

  simnet::Transport transport(world);
  EXPECT_EQ(
      transport.fetchUrl(*field, "http://temporarily.org/").outcome,
      simnet::FetchOutcome::kOk);
}

// ------------------------------------------------------ RepeatedTester ----

TEST_F(OtherCensorshipFixture, RepeatedTesterAggregatesStats) {
  const auto a = hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  const auto b = hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  measure::RepeatedTester tester(world, *field, *lab);

  const std::vector<std::string> urls{"http://" + a.hostname + "/",
                                      "http://" + b.hostname + "/"};
  const auto stats = tester.run(urls, /*passes=*/3, /*hoursBetweenPasses=*/2);
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.runs, 3);
    EXPECT_EQ(s.accessible, 3);
    EXPECT_EQ(s.blocked, 0);
    EXPECT_FALSE(s.inconsistent());
    EXPECT_DOUBLE_EQ(s.blockedFraction(), 0.0);
  }
  // Clock advanced 2 passes * 2h.
  EXPECT_EQ(world.now().hours(), 4);
}

TEST_F(OtherCensorshipFixture, RepeatedTesterDetectsInconsistency) {
  // A firewall that drops only on even hours (deterministic flapping).
  struct FlappingFirewall : simnet::Middlebox {
    std::string name() const override { return "flapping"; }
    std::optional<simnet::InterceptAction> intercept(
        http::Request&, const simnet::InterceptContext& ctx) override {
      if (ctx.now.hours() % 2 == 0) return simnet::InterceptAction::reset();
      return std::nullopt;
    }
  };
  isp->attachMiddlebox(world.makeMiddlebox<FlappingFirewall>());

  const auto site = hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  measure::RepeatedTester tester(world, *field, *lab);
  const std::vector<std::string> urls{"http://" + site.hostname + "/"};
  const auto stats = tester.run(urls, /*passes=*/4, /*hoursBetweenPasses=*/1);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].blocked, 2);
  EXPECT_EQ(stats[0].accessible, 2);
  EXPECT_TRUE(stats[0].inconsistent());
  EXPECT_TRUE(stats[0].everBlocked());
  EXPECT_DOUBLE_EQ(stats[0].blockedFraction(), 0.5);
  EXPECT_FALSE(stats[0].attributedProduct);  // resets carry no block page
}

}  // namespace
}  // namespace urlf
