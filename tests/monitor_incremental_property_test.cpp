// The monitor's correctness contract (DESIGN.md §4.7): the incremental hot
// path — dirty-cell re-scan, cached validation, reused verdicts — must
// produce tick digests byte-identical to the full-rebuild reference, at any
// thread count, across seeds and churn intensities. Mode and threads are
// performance knobs; observable output may not depend on them.
#include <gtest/gtest.h>

#include "scenarios/monitor.h"

namespace urlf::scenarios {
namespace {

MonitorOptions smallWorld(std::uint64_t seed) {
  MonitorOptions options;
  options.seed = seed;
  options.streamHosts = 600;
  options.hostsPerShard = 64;  // many cells, so dirtiness is visible
  options.ticks = 5;
  // Aggressive churn: most ticks dirty several cells and flip verdicts.
  options.churn.rebrandRate = 0.10;
  options.churn.parkRate = 0.03;
  options.churn.dbMutationsPerTick = 5;
  return options;
}

void expectTickEquivalence(const MonitorReport& reference,
                           const MonitorReport& candidate,
                           const std::string& what) {
  ASSERT_EQ(reference.ticks.size(), candidate.ticks.size()) << what;
  for (std::size_t i = 0; i < reference.ticks.size(); ++i) {
    const auto& ref = reference.ticks[i];
    const auto& got = candidate.ticks[i];
    EXPECT_EQ(ref.digestHex(), got.digestHex())
        << what << " diverged at tick " << ref.tick;
    EXPECT_EQ(ref.atHours, got.atHours) << what;
    EXPECT_EQ(ref.newlyConfirmed, got.newlyConfirmed) << what;
    EXPECT_EQ(ref.decommissioned, got.decommissioned) << what;
    EXPECT_EQ(ref.relocated, got.relocated) << what;
    EXPECT_EQ(ref.verdictFlips, got.verdictFlips) << what;
  }
  EXPECT_EQ(reference.chainDigestHex(), candidate.chainDigestHex()) << what;
}

// ------------------------------------------------- Digest equivalence ----

TEST(MonitorEquivalence, IncrementalMatchesFullAcrossSeedsAndThreads) {
  for (const std::uint64_t seed : {kPaperSeed, std::uint64_t{7},
                                   std::uint64_t{0xDECAFBAD}}) {
    MonitorOptions reference = smallWorld(seed);
    reference.mode = MonitorMode::kFull;
    reference.threads = 1;
    const auto full = runMonitor(reference);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      for (const auto mode : {MonitorMode::kFull, MonitorMode::kIncremental}) {
        if (mode == MonitorMode::kFull && threads == 1) continue;
        MonitorOptions options = smallWorld(seed);
        options.mode = mode;
        options.threads = threads;
        const auto report = runMonitor(options);
        expectTickEquivalence(
            full, report,
            std::string(toString(mode)) + "/t" + std::to_string(threads) +
                "/seed" + std::to_string(seed));
      }
    }
  }
}

TEST(MonitorEquivalence, HoldsWithoutScriptedEvents) {
  MonitorOptions options = smallWorld(11);
  options.scriptedEvents = false;
  options.ticks = 4;
  options.mode = MonitorMode::kFull;
  const auto full = runMonitor(options);
  options.mode = MonitorMode::kIncremental;
  const auto incremental = runMonitor(options);
  expectTickEquivalence(full, incremental, "no-events");
}

TEST(MonitorEquivalence, HoldsWithHealthBreakersEnabled) {
  MonitorOptions options = smallWorld(23);
  options.ticks = 4;
  options.healthEnabled = true;
  options.mode = MonitorMode::kFull;
  const auto full = runMonitor(options);
  options.mode = MonitorMode::kIncremental;
  const auto incremental = runMonitor(options);
  expectTickEquivalence(full, incremental, "health-on");
}

TEST(MonitorEquivalence, HoldsWithoutStreamedHosts) {
  // PaperWorld only: the delta machinery must degrade gracefully when there
  // is no churn feed at all (every tick rebuilds just the eager cell).
  MonitorOptions options;
  options.streamHosts = 0;
  options.ticks = 4;
  options.mode = MonitorMode::kFull;
  const auto full = runMonitor(options);
  options.mode = MonitorMode::kIncremental;
  const auto incremental = runMonitor(options);
  expectTickEquivalence(full, incremental, "no-stream");
}

// ------------------------------------------------- Incremental savings ----

TEST(MonitorIncremental, QuietTicksTouchLittle) {
  MonitorOptions options = smallWorld(kPaperSeed);
  options.scriptedEvents = false;
  options.churn.rebrandRate = 0.01;
  options.churn.parkRate = 0.0;
  options.churn.dbMutationsPerTick = 1;
  options.ticks = 4;
  options.mode = MonitorMode::kIncremental;
  const auto report = runMonitor(options);

  ASSERT_EQ(report.ticks.size(), 5u);
  const auto& baseline = report.ticks[0];
  // The baseline builds every cell and validates every candidate fresh.
  EXPECT_EQ(baseline.cellsRebuilt, baseline.cellCount);
  EXPECT_EQ(baseline.validationHits, 0u);
  EXPECT_EQ(baseline.urlsReused, 0u);

  for (std::size_t i = 1; i < report.ticks.size(); ++i) {
    const auto& tick = report.ticks[i];
    // Quiet ticks rebuild a strict minority of cells (the eager cell plus
    // the few holding churned hosts)...
    EXPECT_LT(tick.cellsRebuilt, tick.cellCount / 2)
        << "tick " << tick.tick << " rebuilt " << tick.cellsRebuilt << "/"
        << tick.cellCount;
    // ...reuse the bulk of prior validations...
    EXPECT_GT(tick.validationHits, tick.validationMisses)
        << "tick " << tick.tick;
    // ...and reuse the bulk of prior verdicts.
    EXPECT_GT(tick.urlsReused, tick.urlsTested) << "tick " << tick.tick;
  }
}

TEST(MonitorIncremental, ScriptedEventForcesFullRetest) {
  MonitorOptions options = smallWorld(kPaperSeed);
  options.churn.dbMutationsPerTick = 0;
  options.churn.rebrandRate = 0.0;
  options.churn.parkRate = 0.0;
  options.ticks = 2;
  options.mode = MonitorMode::kIncremental;
  const auto report = runMonitor(options);

  // Tick 1: nothing changed — everything reused.
  EXPECT_EQ(report.ticks[1].urlsTested, 0u);
  // Tick 2: the hide event moved the middlebox epoch — every URL retested.
  EXPECT_EQ(report.ticks[2].urlsReused, 0u);
  EXPECT_GT(report.ticks[2].urlsTested, 0u);
}

TEST(MonitorReportJson, TickReportRoundTripsItsCounters) {
  MonitorOptions options = smallWorld(3);
  options.ticks = 1;
  const auto report = runMonitor(options);
  const auto json = report.ticks[1].toJson();
  ASSERT_TRUE(json.isObject());
  EXPECT_EQ(*json.find("tick")->asNumber(), 1.0);
  EXPECT_EQ(*json.find("digest")->asString(), report.ticks[1].digestHex());
  EXPECT_EQ(*json.find("urls_tested")->asNumber(),
            static_cast<double>(report.ticks[1].urlsTested));
}

}  // namespace
}  // namespace urlf::scenarios
