// The flat category store against its preserved tree-based reference:
// as-of cutoff boundaries, randomized equivalence, and the underlying
// CategorySet / FlatStringMap building blocks against std model containers.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "filters/category_db.h"
#include "filters/category_set.h"
#include "filters/reference_category_store.h"
#include "net/url.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace urlf {
namespace {

net::Url url(const std::string& text) {
  auto parsed = net::Url::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

// --- as-of cutoff boundary --------------------------------------------------

TEST(CategorizeAsOf, CutoffBoundaryIsInclusiveAtEveryGranularity) {
  constexpr util::SimTime kAdded{1000};
  constexpr filters::CategoryId kPorn = 3;
  constexpr filters::CategoryId kNews = 7;
  constexpr filters::CategoryId kChat = 11;

  filters::CategoryDatabase db;
  db.addHost("blocked.example.com", kPorn, kAdded);
  db.addHost("example.info", kNews, kAdded);  // registrable-domain fallback
  db.addUrl(url("http://pages.example.org/banned"), kChat, kAdded);

  const net::Url byHost = url("http://blocked.example.com/anything");
  const net::Url byDomain = url("http://www.example.info/page");
  const net::Url byUrl = url("http://pages.example.org/banned");

  // An entry added at T is visible to a deployment synced at exactly T...
  EXPECT_EQ(db.categorizeAsOf(byHost, kAdded), std::set{kPorn});
  EXPECT_EQ(db.categorizeAsOf(byDomain, kAdded), std::set{kNews});
  EXPECT_EQ(db.categorizeAsOf(byUrl, kAdded), std::set{kChat});
  EXPECT_TRUE(db.isCategorizedAsOf(byHost, kAdded));

  // ...and invisible one tick earlier.
  constexpr util::SimTime kBefore{999};
  EXPECT_TRUE(db.categorizeAsOf(byHost, kBefore).empty());
  EXPECT_TRUE(db.categorizeAsOf(byDomain, kBefore).empty());
  EXPECT_TRUE(db.categorizeAsOf(byUrl, kBefore).empty());
  EXPECT_FALSE(db.isCategorizedAsOf(byHost, kBefore));

  // The reference store draws the same boundary.
  filters::ReferenceCategoryStore reference;
  reference.addHost("blocked.example.com", kPorn, kAdded);
  EXPECT_EQ(reference.categorizeAsOf(byHost, kAdded), std::set{kPorn});
  EXPECT_TRUE(reference.categorizeAsOf(byHost, kBefore).empty());
}

TEST(CategorizeAsOf, KeepsEarliestAddedTimeOnRepeatInsert) {
  filters::CategoryDatabase db;
  db.addHost("h.example.com", 5, util::SimTime{2000});
  db.addHost("h.example.com", 5, util::SimTime{500});  // earlier wins
  db.addHost("h.example.com", 5, util::SimTime{3000});  // later ignored
  const net::Url probe = url("http://h.example.com/");
  EXPECT_TRUE(db.isCategorizedAsOf(probe, util::SimTime{500}));
  EXPECT_FALSE(db.isCategorizedAsOf(probe, util::SimTime{499}));
}

// --- flat ≡ reference on randomized worlds ----------------------------------

TEST(CategoryStoreProperty, FlatMatchesReferenceUnderRandomMutation) {
  const std::vector<std::string> hosts{
      "a.example.com", "b.example.com", "www.a.example.com",
      "example.com",   "example.info",  "news.example.info",
      "x.example.org", "example.org",   "y.example.net",
  };
  const std::vector<std::string> paths{"/", "/page", "/banned?id=1"};

  util::Rng rng(20130814);
  filters::CategoryDatabase flat;
  filters::ReferenceCategoryStore reference;

  for (int step = 0; step < 2000; ++step) {
    const auto op = rng.uniform(0, 9);
    if (op <= 4) {  // addHost
      const auto category =
          static_cast<filters::CategoryId>(rng.uniform(1, 12));
      const util::SimTime addedAt{
          static_cast<std::int64_t>(rng.uniform(0, 5000))};
      const std::string& host = rng.pick(hosts);
      flat.addHost(host, category, addedAt);
      reference.addHost(host, category, addedAt);
    } else if (op <= 6) {  // addUrl
      const auto category =
          static_cast<filters::CategoryId>(rng.uniform(1, 12));
      const util::SimTime addedAt{
          static_cast<std::int64_t>(rng.uniform(0, 5000))};
      const net::Url target =
          url("http://" + rng.pick(hosts) + rng.pick(paths));
      flat.addUrl(target, category, addedAt);
      reference.addUrl(target, category, addedAt);
    } else if (op == 7) {  // removeHost — exercises backward-shift deletion
      const std::string& host = rng.pick(hosts);
      flat.removeHost(host);
      reference.removeHost(host);
    } else {  // probe
      const net::Url probe =
          url("http://" + rng.pick(hosts) + rng.pick(paths));
      const util::SimTime cutoff{
          static_cast<std::int64_t>(rng.uniform(0, 6000))};
      EXPECT_EQ(flat.categorizeAsOf(probe, cutoff),
                reference.categorizeAsOf(probe, cutoff))
          << probe.toString() << " at step " << step;
      EXPECT_EQ(flat.categorize(probe), reference.categorize(probe));
      EXPECT_EQ(flat.isCategorizedAsOf(probe, cutoff),
                !reference.categorizeAsOf(probe, cutoff).empty());
      const std::string& host = rng.pick(hosts);
      EXPECT_EQ(flat.hostCategories(host), reference.hostCategories(host));
    }
    EXPECT_EQ(flat.entryCount(), reference.entryCount());
  }
}

// --- CategorySet -------------------------------------------------------------

TEST(CategorySet, StaysSortedDedupedAndReusable) {
  filters::CategorySet set;
  EXPECT_TRUE(set.empty());
  for (const filters::CategoryId id : {9, 2, 7, 2, 9, 1}) set.insert(id);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_EQ(set.ids(), (std::vector<filters::CategoryId>{1, 2, 7, 9}));
  EXPECT_TRUE(set.contains(7));
  EXPECT_FALSE(set.contains(3));
  EXPECT_EQ(set.toSet(), (std::set<filters::CategoryId>{1, 2, 7, 9}));

  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains(1));
  set.insert(5);
  EXPECT_EQ(set.toSet(), std::set<filters::CategoryId>{5});
}

// --- FlatStringMap vs std::map model ----------------------------------------

TEST(FlatStringMap, MatchesStdMapModelUnderRandomOps) {
  util::FlatStringMap<int> flat;
  std::map<std::string, int, std::less<>> model;
  util::Rng rng(77);

  // A small key universe forces collisions, repeats, erase-of-present and
  // growth through several capacity doublings.
  std::vector<std::string> keys;
  for (int i = 0; i < 120; ++i) keys.push_back("key-" + std::to_string(i));

  for (int step = 0; step < 5000; ++step) {
    const std::string& key = rng.pick(keys);
    switch (rng.uniform(0, 2)) {
      case 0: {  // insert/update
        const int value = static_cast<int>(rng.uniform(0, 1000));
        flat.getOrInsert(key) = value;
        model[key] = value;
        break;
      }
      case 1: {  // erase — exercises Algorithm R backward-shift
        EXPECT_EQ(flat.erase(key), model.erase(key) > 0) << key;
        break;
      }
      default: {  // find
        const int* found = flat.find(key);
        const auto it = model.find(key);
        ASSERT_EQ(found != nullptr, it != model.end()) << key;
        if (found != nullptr) EXPECT_EQ(*found, it->second) << key;
      }
    }
    ASSERT_EQ(flat.size(), model.size());
  }

  // forEach must visit exactly the surviving pairs.
  std::map<std::string, int, std::less<>> visited;
  flat.forEach([&](const std::string& key, const int& value) {
    EXPECT_TRUE(visited.emplace(key, value).second) << "duplicate " << key;
  });
  EXPECT_EQ(visited, model);

  EXPECT_FALSE(flat.erase("never-inserted"));
  EXPECT_EQ(flat.find("never-inserted"), nullptr);
}

}  // namespace
}  // namespace urlf
