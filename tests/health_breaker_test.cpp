// Vantage health / circuit breaker tests (DESIGN.md §4.4):
//
//  * pins which FetchOutcomes count as hard failures, which are ignored,
//    and which close the breaker — the contract the measurement pipeline
//    and the OutagePlan harness both rely on,
//  * the closed -> open -> half-open state machine on the simulated clock,
//  * breaker + OutagePlan integration through measure::Client: a dead
//    vantage trips the breaker and later rows degrade (recorded, skipped,
//    kDegraded provenance) instead of wedging the campaign,
//  * campaign-level outage semantics: middlebox silent-stop fails open and
//    a category-DB rollback window changes policy decisions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "measure/client.h"
#include "measure/health.h"
#include "scenarios/campaign.h"
#include "scenarios/paper_world.h"
#include "simnet/outage.h"
#include "util/clock.h"

namespace {

using namespace urlf;
using measure::BreakerPolicy;
using measure::BreakerState;
using measure::HealthDecision;
using measure::HealthRegistry;
using measure::VantageHealth;
using simnet::FetchOutcome;
using util::SimTime;

constexpr SimTime t(std::int64_t hours) { return SimTime{hours}; }

// --- outcome classification (regression-pins the breaker's inputs) --------

TEST(BreakerOutcomes, HardFailuresArePinned) {
  EXPECT_TRUE(VantageHealth::hardFailure(FetchOutcome::kTimeout));
  EXPECT_TRUE(VantageHealth::hardFailure(FetchOutcome::kReset));
  EXPECT_TRUE(VantageHealth::hardFailure(FetchOutcome::kDnsFailure));
  EXPECT_TRUE(VantageHealth::hardFailure(FetchOutcome::kConnectFailure));
  EXPECT_FALSE(VantageHealth::hardFailure(FetchOutcome::kOk));
  EXPECT_FALSE(VantageHealth::hardFailure(FetchOutcome::kBadUrl));
}

TEST(BreakerOutcomes, OnlyBadUrlIsIgnored) {
  EXPECT_TRUE(VantageHealth::ignored(FetchOutcome::kBadUrl));
  EXPECT_FALSE(VantageHealth::ignored(FetchOutcome::kOk));
  EXPECT_FALSE(VantageHealth::ignored(FetchOutcome::kTimeout));
  EXPECT_FALSE(VantageHealth::ignored(FetchOutcome::kReset));
  EXPECT_FALSE(VantageHealth::ignored(FetchOutcome::kDnsFailure));
  EXPECT_FALSE(VantageHealth::ignored(FetchOutcome::kConnectFailure));
}

TEST(BreakerOutcomes, BadUrlNeverTripsAndNeverResets) {
  VantageHealth health({.failureThreshold = 3, .cooldownHours = 24});
  // A flood of unparseable URLs is evidence about the test list, not the
  // vantage: no state change at all.
  for (int i = 0; i < 10; ++i)
    health.recordOutcome(FetchOutcome::kBadUrl, t(0));
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.consecutiveFailures(), 0);

  // And a kBadUrl interleaved in a failure streak must not break the
  // streak either — the vantage produced no counter-evidence.
  health.recordOutcome(FetchOutcome::kTimeout, t(1));
  health.recordOutcome(FetchOutcome::kBadUrl, t(1));
  health.recordOutcome(FetchOutcome::kReset, t(2));
  EXPECT_EQ(health.consecutiveFailures(), 2);
  health.recordOutcome(FetchOutcome::kDnsFailure, t(3));
  EXPECT_EQ(health.state(), BreakerState::kOpen);
}

TEST(BreakerOutcomes, SuccessResetsTheStreak) {
  VantageHealth health({.failureThreshold = 3, .cooldownHours = 24});
  health.recordOutcome(FetchOutcome::kTimeout, t(0));
  health.recordOutcome(FetchOutcome::kTimeout, t(1));
  EXPECT_EQ(health.consecutiveFailures(), 2);
  health.recordOutcome(FetchOutcome::kOk, t(2));
  EXPECT_EQ(health.consecutiveFailures(), 0);
  EXPECT_EQ(health.state(), BreakerState::kClosed);
}

// --- state machine --------------------------------------------------------

TEST(BreakerStateMachine, OpensExactlyAtThreshold) {
  VantageHealth health({.failureThreshold = 5, .cooldownHours = 24});
  for (int i = 0; i < 4; ++i)
    health.recordOutcome(FetchOutcome::kTimeout, t(i));
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.decide(t(4)), HealthDecision::kProceed);
  health.recordOutcome(FetchOutcome::kTimeout, t(4));
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_EQ(health.timesOpened(), 1u);
}

TEST(BreakerStateMachine, QuarantinesUntilCooldownThenProbes) {
  VantageHealth health({.failureThreshold = 2, .cooldownHours = 24});
  health.recordOutcome(FetchOutcome::kReset, t(100));
  health.recordOutcome(FetchOutcome::kReset, t(100));
  ASSERT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_EQ(health.openedAt(), t(100));

  EXPECT_EQ(health.decide(t(100)), HealthDecision::kQuarantined);
  EXPECT_EQ(health.decide(t(123)), HealthDecision::kQuarantined);
  // Cooldown elapsed: exactly one probe is let through.
  EXPECT_EQ(health.decide(t(124)), HealthDecision::kProbe);
  EXPECT_EQ(health.state(), BreakerState::kHalfOpen);
}

TEST(BreakerStateMachine, ProbeSuccessCloses) {
  VantageHealth health({.failureThreshold = 2, .cooldownHours = 24});
  health.recordOutcome(FetchOutcome::kTimeout, t(0));
  health.recordOutcome(FetchOutcome::kTimeout, t(0));
  ASSERT_EQ(health.decide(t(24)), HealthDecision::kProbe);
  health.recordOutcome(FetchOutcome::kOk, t(24));
  EXPECT_EQ(health.state(), BreakerState::kClosed);
  EXPECT_EQ(health.consecutiveFailures(), 0);
  EXPECT_EQ(health.decide(t(24)), HealthDecision::kProceed);
}

TEST(BreakerStateMachine, ProbeFailureReopensAndRestartsCooldown) {
  VantageHealth health({.failureThreshold = 2, .cooldownHours = 24});
  health.recordOutcome(FetchOutcome::kTimeout, t(0));
  health.recordOutcome(FetchOutcome::kTimeout, t(0));
  ASSERT_EQ(health.decide(t(30)), HealthDecision::kProbe);
  health.recordOutcome(FetchOutcome::kTimeout, t(30));
  EXPECT_EQ(health.state(), BreakerState::kOpen);
  EXPECT_EQ(health.openedAt(), t(30));  // cooldown restarts at the probe
  EXPECT_EQ(health.timesOpened(), 2u);
  EXPECT_EQ(health.decide(t(53)), HealthDecision::kQuarantined);
  EXPECT_EQ(health.decide(t(54)), HealthDecision::kProbe);
}

// --- OutagePlan primitives ------------------------------------------------

TEST(OutagePlan, VantageDeathIsPermanentFromItsDeathTime) {
  scenarios::PaperWorld paper(scenarios::kPaperSeed);
  const auto* vantage = paper.world().findVantage("field-etisalat");
  ASSERT_NE(vantage, nullptr);

  simnet::OutagePlan plan;
  plan.killVantage("field-etisalat", t(1000));
  EXPECT_FALSE(plan.vantageDead(*vantage, t(999)));
  EXPECT_TRUE(plan.vantageDead(*vantage, t(1000)));
  EXPECT_TRUE(plan.vantageDead(*vantage, t(100000)));

  const auto* other = paper.world().findVantage("field-yemennet");
  ASSERT_NE(other, nullptr);
  EXPECT_FALSE(plan.vantageDead(*other, t(100000)));
}

TEST(OutagePlan, RollbackWindowRevertsPolicyTimeHalfOpenInterval) {
  simnet::OutagePlan plan;
  plan.addDbRollback(t(100), t(200), t(10));
  EXPECT_EQ(plan.policyTime(t(99)), t(99));
  EXPECT_EQ(plan.policyTime(t(100)), t(10));
  EXPECT_EQ(plan.policyTime(t(199)), t(10));
  EXPECT_EQ(plan.policyTime(t(200)), t(200));
}

// --- Client integration: quarantine + degraded provenance -----------------

TEST(ClientHealth, DeadVantageTripsBreakerAndDegradesLaterRows) {
  scenarios::PaperWorld paper(scenarios::kPaperSeed);
  auto& world = paper.world();
  const auto* field = world.findVantage("field-etisalat");
  const auto* lab = world.findVantage("lab-toronto");
  ASSERT_NE(field, nullptr);
  ASSERT_NE(lab, nullptr);

  simnet::OutagePlan plan;
  plan.killVantage("field-etisalat", SimTime::fromDate({2013, 1, 1}));
  world.setOutagePlan(plan);
  scenarios::advanceClockTo(world, {2013, 1, 10});

  HealthRegistry registry({.failureThreshold = 3, .cooldownHours = 24});
  measure::Client client(world, *field, *lab);
  client.setHealthRegistry(&registry);

  const std::string url = paper.globalList().urls().front();

  // The first `failureThreshold` tests really fetch — and time out.
  for (int i = 0; i < 3; ++i) {
    const auto result = client.testUrl(url);
    EXPECT_EQ(result.field.outcome, FetchOutcome::kTimeout);
    EXPECT_EQ(result.provenance, measure::Provenance::kConfirmed);
  }
  ASSERT_EQ(registry.of("field-etisalat").state(), BreakerState::kOpen);

  // From now on rows degrade: no fetch, kError verdict, explicit reason.
  const auto degraded = client.testUrl(url);
  EXPECT_EQ(degraded.provenance, measure::Provenance::kDegraded);
  EXPECT_EQ(degraded.verdict, measure::Verdict::kError);
  EXPECT_NE(degraded.field.error.find("quarantined"), std::string::npos);
  EXPECT_GE(registry.of("field-etisalat").requestsQuarantined(), 1u);

  // After the cooldown a half-open probe really fetches — the vantage is
  // still dead, so the breaker reopens rather than closing.
  scenarios::advanceClockTo(world, {2013, 1, 12});
  const auto probe = client.testUrl(url);
  EXPECT_EQ(probe.provenance, measure::Provenance::kConfirmed);
  EXPECT_EQ(probe.field.outcome, FetchOutcome::kTimeout);
  EXPECT_EQ(registry.of("field-etisalat").state(), BreakerState::kOpen);
  EXPECT_EQ(registry.of("field-etisalat").timesOpened(), 2u);

  // The lab side is never tracked: only the field vantage appears.
  EXPECT_EQ(registry.find("lab-toronto"), nullptr);
}

// --- campaign-level outage semantics --------------------------------------

TEST(CampaignOutages, MiddleboxSilentStopFailsOpen) {
  scenarios::CampaignOptions clean;
  const auto baseline = scenarios::runPaperCampaign(clean);

  // The Ooredoo Netsweeper stops intercepting before the August 2013
  // characterization: blocked cells must DROP (fail open), never rise.
  scenarios::CampaignOptions stopped;
  stopped.outages.middleboxStops.push_back(
      {"Ooredoo Netsweeper", {2013, 8, 20}});
  const auto failedOpen = scenarios::runPaperCampaign(stopped);

  EXPECT_LT(failedOpen.table4Blocked, baseline.table4Blocked);
  EXPECT_NE(failedOpen.digest, baseline.digest);
}

TEST(CampaignOutages, DbRollbackWindowChangesVerdicts) {
  scenarios::CampaignOptions clean;
  const auto baseline = scenarios::runPaperCampaign(clean);

  // April 2013 holds four case studies' submit/retest schedules; rolling
  // the category DBs back to January reverts fresh categorizations, so the
  // campaign must observe different verdicts.
  scenarios::CampaignOptions rolled;
  rolled.outages.rollbacks.push_back(
      {{2013, 4, 1}, {2013, 5, 1}, {2013, 1, 1}});
  const auto rolledBack = scenarios::runPaperCampaign(rolled);

  EXPECT_NE(rolledBack.digest, baseline.digest);
  // A rollback changes policy state, not vantage reachability: nothing
  // should degrade.
  EXPECT_EQ(rolledBack.degradedRows, 0);
}

TEST(CampaignOutages, VantageDeathWithBreakerDegradesInsteadOfWedging) {
  scenarios::CampaignOptions options;
  options.healthEnabled = true;
  options.breaker.failureThreshold = 5;
  options.breaker.cooldownHours = 24;
  options.outages.vantageDeaths.push_back({"field-nournet", {2013, 5, 8}});
  const auto report = scenarios::runPaperCampaign(options);

  EXPECT_GT(report.degradedRows, 0);
  bool sawOpenNournet = false;
  for (const auto& [vantage, state] : report.vantageHealth)
    if (vantage == "field-nournet") sawOpenNournet = (state == BreakerState::kOpen);
  EXPECT_TRUE(sawOpenNournet);
}

}  // namespace
