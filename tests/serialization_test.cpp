// Tests for the machine-readable output layer: CSV escaping, the JSON
// value/writer/parser, scan-record export/import round-trips, result
// serializers, evaluation metrics, and the regex fingerprint matchers.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/serialize.h"
#include "fingerprint/matcher.h"
#include "report/csv.h"
#include "report/json.h"
#include "scan/serialize.h"
#include "scenarios/paper_world.h"
#include "util/rng.h"

namespace urlf {
namespace {

using report::Json;

// ---------------------------------------------------------------- CSV ----

TEST(CsvTest, PlainFieldsUnchanged) {
  EXPECT_EQ(report::csvEscape("plain"), "plain");
  EXPECT_EQ(report::csvEscape(""), "");
}

TEST(CsvTest, EscapesSpecials) {
  EXPECT_EQ(report::csvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(report::csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(report::csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, RowAndDocument) {
  EXPECT_EQ(report::csvRow({"a", "b,c", "d"}), "a,\"b,c\",d");
  const auto doc = report::csvDocument({"x", "y"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(doc, "x,y\n1,2\n3,4\n");
}

// --------------------------------------------------------------- JSON ----

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json::null().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::number(std::int64_t{42}).dump(), "42");
  EXPECT_EQ(Json::number(2.5).dump(), "2.5");
  EXPECT_EQ(Json::string("x").dump(), "\"x\"");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Json::string("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Json::escape("\t"), "\\t");
  EXPECT_EQ(Json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, ObjectAndArrayDump) {
  Json object = Json::object();
  object["b"] = Json::number(std::int64_t{1});
  object["a"] = Json::string("x");
  // std::map ordering makes output deterministic: keys sorted.
  EXPECT_EQ(object.dump(), "{\"a\":\"x\",\"b\":1}");

  Json array = Json::array();
  array.push(Json::number(std::int64_t{1}));
  array.push(Json::boolean(false));
  EXPECT_EQ(array.dump(), "[1,false]");
  EXPECT_EQ(Json::array().dump(), "[]");
  EXPECT_EQ(Json::object().dump(), "{}");
}

TEST(JsonTest, PrettyPrint) {
  Json object = Json::object();
  object["k"] = Json::number(std::int64_t{1});
  EXPECT_EQ(object.dump(2), "{\n  \"k\": 1\n}");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::parse("null")->isNull());
  EXPECT_EQ(*Json::parse("true")->asBool(), true);
  EXPECT_DOUBLE_EQ(*Json::parse("-3.5e2")->asNumber(), -350.0);
  EXPECT_EQ(*Json::parse("\"hi\"")->asString(), "hi");
}

TEST(JsonTest, ParseStructures) {
  const auto parsed = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(parsed);
  const auto* a = parsed->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  EXPECT_EQ(a->asArray()->size(), 3u);
  EXPECT_EQ(*(*a->asArray())[2].find("b")->asString(), "c");
  EXPECT_TRUE(parsed->find("d")->isNull());
}

TEST(JsonTest, ParseEscapes) {
  EXPECT_EQ(*Json::parse(R"("a\n\t\"\\A")")->asString(), "a\n\t\"\\A");
  // Unicode BMP escape -> UTF-8.
  EXPECT_EQ(*Json::parse(R"("é")")->asString(), "\xC3\xA9");
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::parse(""));
  EXPECT_FALSE(Json::parse("{"));
  EXPECT_FALSE(Json::parse("[1,]"));
  EXPECT_FALSE(Json::parse("{\"a\" 1}"));
  EXPECT_FALSE(Json::parse("\"unterminated"));
  EXPECT_FALSE(Json::parse("trailing garbage"));
  EXPECT_FALSE(Json::parse("1 2"));
  EXPECT_FALSE(Json::parse("\"bad\\q\""));
}

TEST(JsonTest, TypeErrorsThrow) {
  Json number = Json::number(1.0);
  EXPECT_THROW(number["k"], std::logic_error);
  EXPECT_THROW(number.push(Json::null()), std::logic_error);
  // Null auto-vivifies into the needed container.
  Json null1;
  null1["k"] = Json::number(1.0);
  EXPECT_TRUE(null1.isObject());
  Json null2;
  null2.push(Json::number(1.0));
  EXPECT_TRUE(null2.isArray());
}

/// Property: dump -> parse -> dump is a fixed point for generated documents.
class JsonRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTrip, DumpParseDumpStable) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    Json doc = Json::object();
    const int members = static_cast<int>(rng.uniform(0, 6));
    for (int m = 0; m < members; ++m) {
      const std::string key = "key" + std::to_string(m);
      switch (rng.uniform(0, 3)) {
        case 0: doc[key] = Json::number(static_cast<std::int64_t>(
                    rng.uniform(0, 100000))); break;
        case 1: doc[key] = Json::string("v\"al\n" + std::to_string(m)); break;
        case 2: doc[key] = Json::boolean(rng.chance(0.5)); break;
        default: {
          Json array = Json::array();
          const int n = static_cast<int>(rng.uniform(0, 4));
          for (int j = 0; j < n; ++j)
            array.push(Json::string("item" + std::to_string(j)));
          doc[key] = std::move(array);
        }
      }
    }
    const std::string once = doc.dump();
    const auto parsed = Json::parse(once);
    ASSERT_TRUE(parsed) << once;
    ASSERT_EQ(parsed->dump(), once);
    // Pretty-printed output parses back to the same document too.
    const auto pretty = Json::parse(doc.dump(2));
    ASSERT_TRUE(pretty);
    ASSERT_EQ(pretty->dump(), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, JsonRoundTrip,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ------------------------------------------------------- Scan records ----

TEST(ScanSerializeTest, RoundTripsRealScanData) {
  scenarios::PaperWorld paper;
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  ASSERT_GT(index.size(), 50u);

  const auto exported = scan::exportRecords(index.records());
  const auto imported = scan::importRecords(exported);
  ASSERT_TRUE(imported);
  ASSERT_EQ(imported->size(), index.size());

  for (std::size_t i = 0; i < imported->size(); ++i) {
    const auto& a = index.records()[i];
    const auto& b = (*imported)[i];
    EXPECT_EQ(a.ip, b.ip);
    EXPECT_EQ(a.port, b.port);
    EXPECT_EQ(a.statusCode, b.statusCode);
    EXPECT_EQ(a.headers, b.headers);
    EXPECT_EQ(a.body, b.body);
    EXPECT_EQ(a.title, b.title);
    EXPECT_EQ(a.countryAlpha2, b.countryAlpha2);
    EXPECT_EQ(a.observedAt, b.observedAt);
  }

  // An imported index searches identically.
  const auto restored = scan::BannerIndex::fromRecords(std::move(*imported));
  EXPECT_EQ(restored.search({"netsweeper", std::nullopt}).size(),
            index.search({"netsweeper", std::nullopt}).size());
}

TEST(ScanSerializeTest, ImportRejectsMalformed) {
  EXPECT_FALSE(scan::importRecords("not json"));
  EXPECT_FALSE(scan::importRecords("{}"));             // not an array
  EXPECT_FALSE(scan::importRecords("[{\"ip\": 5}]"));  // wrong types
  EXPECT_FALSE(scan::importRecords(
      R"([{"ip": "999.1.1.1", "port": 80, "status": 200}])"));
  EXPECT_FALSE(scan::importRecords(
      R"([{"ip": "1.1.1.1", "port": 99999, "status": 200}])"));
  const auto minimal =
      scan::importRecords(R"([{"ip": "1.1.1.1", "port": 80, "status": 200}])");
  ASSERT_TRUE(minimal);
  EXPECT_EQ((*minimal)[0].ip.toString(), "1.1.1.1");
}

// --------------------------------------------------- Result serializers ----

TEST(ResultJsonTest, CaseStudyResultShape) {
  core::CaseStudyResult result;
  result.config.product = filters::ProductKind::kNetsweeper;
  result.config.ispName = "Du";
  result.config.countryAlpha2 = "AE";
  result.config.categoryLabel = "Proxy anonymizer";
  result.dateLabel = "3/2013";
  result.submittedUrls = {"http://a.info/", "http://b.info/"};
  result.controlUrls = {"http://c.info/"};
  result.submittedBlocked = 2;
  result.attributedToProduct = 2;
  result.confirmed = true;

  const auto json = core::toJson(result);
  EXPECT_EQ(*json.find("product")->asString(), "Netsweeper");
  EXPECT_EQ(*json.find("sites_blocked")->asString(), "2/2");
  EXPECT_EQ(*json.find("sites_submitted")->asString(), "2/3");
  EXPECT_EQ(*json.find("confirmed")->asBool(), true);
  EXPECT_EQ(json.find("submitted_urls")->asArray()->size(), 2u);
  // It must be valid JSON text.
  EXPECT_TRUE(Json::parse(json.dump(2)));
}

TEST(ResultJsonTest, InstallationShape) {
  core::Installation installation;
  installation.product = filters::ProductKind::kBlueCoat;
  installation.ip = net::Ipv4Addr(60, 3, 0, 2);
  installation.port = 8082;
  installation.countryAlpha2 = "AE";
  installation.asn = geo::AsnRecord{5384, "EMIRATES-INTERNET", "Etisalat", "AE"};
  installation.certainty = 1.0;
  installation.evidence = {"Server: Blue Coat ProxySG"};

  const auto json = core::toJson(installation);
  EXPECT_EQ(*json.find("ip")->asString(), "60.3.0.2");
  EXPECT_DOUBLE_EQ(*json.find("asn")->find("asn")->asNumber(), 5384.0);
  EXPECT_EQ(json.find("evidence")->asArray()->size(), 1u);
}

// ---------------------------------------------------------- Evaluation ----

TEST(EvaluationTest, PerfectScore) {
  std::vector<core::Installation> reported(2);
  reported[0].ip = net::Ipv4Addr(1, 0, 0, 1);
  reported[1].ip = net::Ipv4Addr(1, 0, 0, 2);
  const auto confusion = core::scoreIdentification(
      reported, {net::Ipv4Addr(1, 0, 0, 1).value(),
                 net::Ipv4Addr(1, 0, 0, 2).value()});
  EXPECT_EQ(confusion.truePositives, 2);
  EXPECT_EQ(confusion.falsePositives, 0);
  EXPECT_EQ(confusion.falseNegatives, 0);
  EXPECT_DOUBLE_EQ(confusion.precision(), 1.0);
  EXPECT_DOUBLE_EQ(confusion.recall(), 1.0);
  EXPECT_DOUBLE_EQ(confusion.f1(), 1.0);
}

TEST(EvaluationTest, MixedScore) {
  std::vector<core::Installation> reported(2);
  reported[0].ip = net::Ipv4Addr(1, 0, 0, 1);  // true positive
  reported[1].ip = net::Ipv4Addr(9, 9, 9, 9);  // false positive
  const auto confusion = core::scoreIdentification(
      reported, {net::Ipv4Addr(1, 0, 0, 1).value(),
                 net::Ipv4Addr(1, 0, 0, 2).value()});  // one missed
  EXPECT_EQ(confusion.truePositives, 1);
  EXPECT_EQ(confusion.falsePositives, 1);
  EXPECT_EQ(confusion.falseNegatives, 1);
  EXPECT_DOUBLE_EQ(confusion.precision(), 0.5);
  EXPECT_DOUBLE_EQ(confusion.recall(), 0.5);
}

TEST(EvaluationTest, EmptyCasesAreVacuouslyPerfect) {
  const auto confusion = core::scoreIdentification({}, {});
  EXPECT_DOUBLE_EQ(confusion.precision(), 1.0);
  EXPECT_DOUBLE_EQ(confusion.recall(), 1.0);
  EXPECT_DOUBLE_EQ(confusion.f1(), 1.0);
}

TEST(EvaluationTest, DuplicateReportsCountOnce) {
  std::vector<core::Installation> reported(3);
  reported[0].ip = net::Ipv4Addr(1, 0, 0, 1);
  reported[1].ip = net::Ipv4Addr(1, 0, 0, 1);  // duplicate
  reported[2].ip = net::Ipv4Addr(1, 0, 0, 1);  // duplicate
  const auto confusion = core::scoreIdentification(
      reported, {net::Ipv4Addr(1, 0, 0, 1).value()});
  EXPECT_EQ(confusion.truePositives, 1);
  EXPECT_EQ(confusion.falsePositives, 0);
}

// ------------------------------------------------------- Regex matchers ----

TEST(RegexMatcherTest, HeaderRegex) {
  fingerprint::Observation obs;
  obs.headers.add("Via", "1.1 mwg.local (McAfee Web Gateway 7.2.0.9)");
  const auto matcher =
      fingerprint::Matcher::headerRegex("Via", R"(McAfee Web Gateway [\d.]+)");
  EXPECT_TRUE(matcher.match(obs));
  EXPECT_FALSE(fingerprint::Matcher::headerRegex("Via", R"(Netsweeper/\d)")
                   .match(obs));
}

TEST(RegexMatcherTest, BodyRegex) {
  fingerprint::Observation obs;
  obs.body = "<form action=\"/webadmin/login\">";
  EXPECT_TRUE(
      fingerprint::Matcher::bodyRegex(R"(/webadmin/\w+)").match(obs));
  EXPECT_FALSE(fingerprint::Matcher::bodyRegex(R"(blockpage\.cgi)").match(obs));
}

TEST(RegexMatcherTest, CaseInsensitive) {
  fingerprint::Observation obs;
  obs.body = "NETSWEEPER WEBADMIN";
  EXPECT_TRUE(fingerprint::Matcher::bodyRegex("netsweeper").match(obs));
}

TEST(RegexMatcherTest, MalformedPatternThrows) {
  EXPECT_THROW(fingerprint::Matcher::bodyRegex("(unclosed"), std::regex_error);
}

TEST(RegexMatcherTest, DescribeShowsPattern) {
  EXPECT_EQ(fingerprint::Matcher::bodyRegex("x+").describe(),
            "body matches /x+/i");
  EXPECT_EQ(fingerprint::Matcher::headerRegex("Via", "a").describe(),
            "header Via matches /a/i");
}

TEST(RegexMatcherTest, UsableInsideSignatures) {
  fingerprint::Engine engine;
  engine.addSignature(
      {filters::ProductKind::kSmartFilter,
       "regex-sig",
       {{fingerprint::Matcher::headerRegex("Via", R"(\(McAfee Web Gateway)"),
         1.0}},
       0.5});
  fingerprint::Observation obs;
  obs.headers.add("Via", "1.1 gw (McAfee Web Gateway 7.2)");
  EXPECT_EQ(engine.evaluate(obs).size(), 1u);
}

}  // namespace
}  // namespace urlf
