// Tests for the §6/§7 extension features: the category scout (automated
// Challenge 1), Netalyzr-style transparent-proxy detection, census-based
// identification, and submission-identity rotation (counter-evasion).
#include <gtest/gtest.h>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "core/proxy_detect.h"
#include "core/scout.h"
#include "scan/serialize.h"
#include "simnet/transport.h"
#include "scenarios/paper_world.h"

namespace urlf {
namespace {

using filters::ProductKind;
using scenarios::PaperWorld;

// ------------------------------------------------------ CategoryScout ----

TEST(CategoryScoutTest, ReproducesChallengeOneInSaudiArabia) {
  // §4.3: "we found Web sites classified as proxies by SmartFilter were
  // accessible in Saudi Arabia ... However, Web sites classified as
  // pornography by SmartFilter are blocked."
  PaperWorld paper;
  core::CategoryScout scout(paper.world());
  const auto uses =
      scout.scout("field-bayanat", "lab-toronto",
                  paper.referenceSites(ProductKind::kSmartFilter));

  bool anonymizersInUse = true;
  bool pornographyInUse = false;
  for (const auto& use : uses) {
    if (use.categoryName == "Anonymizers") anonymizersInUse = use.inUse();
    if (use.categoryName == "Pornography") pornographyInUse = use.inUse();
  }
  EXPECT_FALSE(anonymizersInUse);
  EXPECT_TRUE(pornographyInUse);
}

TEST(CategoryScoutTest, EtisalatEnforcesBothCategories) {
  PaperWorld paper;
  core::CategoryScout scout(paper.world());
  const auto uses =
      scout.scout("field-etisalat", "lab-toronto",
                  paper.referenceSites(ProductKind::kSmartFilter));
  int enforced = 0;
  for (const auto& use : uses) {
    if (use.categoryName == "Anonymizers" || use.categoryName == "Pornography")
      enforced += use.inUse() ? 1 : 0;
  }
  EXPECT_EQ(enforced, 2);
}

TEST(CategoryScoutTest, PickEnforcedCategoryPrefersCandidateOrder) {
  std::vector<core::CategoryUse> uses;
  uses.push_back({1, "Anonymizers", 2, 0});    // not enforced
  uses.push_back({2, "Pornography", 1, 1});    // enforced
  uses.push_back({3, "Gambling", 1, 1});       // enforced
  const auto pick = core::CategoryScout::pickEnforcedCategory(
      uses, {"Anonymizers", "Pornography", "Gambling"});
  ASSERT_TRUE(pick);
  EXPECT_EQ(*pick, "Pornography");
  EXPECT_FALSE(core::CategoryScout::pickEnforcedCategory(
      uses, {"Anonymizers"}));
}

TEST(CategoryScoutTest, ScoutThenConfirmWorkflow) {
  // The full automated §4 workflow: scout which category Bayanat enforces,
  // then run the confirmation under that category.
  PaperWorld paper;
  core::CategoryScout scout(paper.world());
  const auto uses =
      scout.scout("field-bayanat", "lab-toronto",
                  paper.referenceSites(ProductKind::kSmartFilter));
  const auto category = core::CategoryScout::pickEnforcedCategory(
      uses, {"Anonymizers", "Pornography"});
  ASSERT_TRUE(category);
  EXPECT_EQ(*category, "Pornography");

  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  core::CaseStudyConfig config;
  config.product = ProductKind::kSmartFilter;
  config.ispName = "Bayanat Al-Oula";
  config.countryAlpha2 = "SA";
  config.fieldVantage = "field-bayanat";
  config.categoryName = *category;
  config.profile = simnet::ContentProfile::kAdultImage;
  config.totalSites = 10;
  config.sitesToSubmit = 5;
  const auto result = confirmer.run(config);
  EXPECT_TRUE(result.confirmed);
}

TEST(CategoryScoutTest, RejectsUnknownVantage) {
  PaperWorld paper;
  core::CategoryScout scout(paper.world());
  EXPECT_THROW((void)scout.scout("nope", "lab-toronto", {}),
               std::invalid_argument);
}

// ------------------------------------------------------ ProxyDetector ----

TEST(ProxyDetectorTest, DetectsProxySgInEtisalatAndOoredoo) {
  PaperWorld paper;
  core::ProxyDetector detector(paper.world());

  for (const char* vantage : {"field-etisalat", "field-ooredoo"}) {
    const auto evidence =
        detector.detect(vantage, "lab-toronto", paper.echoUrl());
    EXPECT_TRUE(evidence.proxyDetected()) << vantage;
    ASSERT_TRUE(evidence.productHint) << vantage;
    EXPECT_EQ(*evidence.productHint, "Blue Coat ProxySG") << vantage;
    EXPECT_FALSE(evidence.addedResponseHeaders.empty()) << vantage;
  }
}

TEST(ProxyDetectorTest, NoProxyEvidenceInNonProxyNetworks) {
  // Du, YemenNet and the Saudi ISPs filter in-path but do not annotate
  // forwarded traffic, so a Netalyzr-style probe sees nothing — precisely
  // why the paper's confirmation method is needed as ground truth (§7).
  PaperWorld paper;
  core::ProxyDetector detector(paper.world());
  for (const char* vantage : {"field-du", "field-bayanat", "field-nournet"}) {
    const auto evidence =
        detector.detect(vantage, "lab-toronto", paper.echoUrl());
    EXPECT_FALSE(evidence.proxyDetected()) << vantage;
    EXPECT_FALSE(evidence.productHint) << vantage;
  }
}

TEST(ProxyDetectorTest, EmptyEvidenceWhenEchoUnreachable) {
  PaperWorld paper;
  core::ProxyDetector detector(paper.world());
  const auto evidence =
      detector.detect("field-du", "lab-toronto", "http://nx.example/");
  EXPECT_FALSE(evidence.proxyDetected());
}

TEST(ProxyDetectorTest, AgreesWithGroundTruthAcrossCaseStudyIsps) {
  // Calibration matrix: proxy evidence iff the ISP's chain contains a
  // ProxySG (the §7 "ground truth" application).
  PaperWorld paper;
  core::ProxyDetector detector(paper.world());
  struct Expectation {
    const char* vantage;
    bool proxyExpected;
  };
  const Expectation expectations[] = {
      {"field-etisalat", true}, {"field-ooredoo", true},
      {"field-du", false},      {"field-yemennet", false},
      {"field-bayanat", false}, {"field-nournet", false},
  };
  for (const auto& [vantage, expected] : expectations) {
    const auto evidence =
        detector.detect(vantage, "lab-toronto", paper.echoUrl());
    EXPECT_EQ(evidence.proxyDetected(), expected) << vantage;
  }
}

// ------------------------------------------- Census-based identification ----

TEST(CensusIdentificationTest, CensusIndexFindsSameInstallations) {
  PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();

  scan::BannerIndex shodan;
  shodan.crawl(world, geo);

  // Sweep the product ports plus 80.
  scan::CensusScanner census({80, 4711, 8080, 8082, 15871});
  auto censusIndex = scan::BannerIndex::fromRecords(census.sweep(world, geo));

  const auto engine = fingerprint::Engine::withBuiltinSignatures();
  core::Identifier fromShodan(world, shodan, engine, geo, whois);
  core::Identifier fromCensus(world, censusIndex, engine, geo, whois);

  for (const auto product : filters::allProducts()) {
    auto ips = [](const std::vector<core::Installation>& installations) {
      std::set<std::uint32_t> out;
      for (const auto& inst : installations) out.insert(inst.ip.value());
      return out;
    };
    EXPECT_EQ(ips(fromShodan.identify(product)),
              ips(fromCensus.identify(product)))
        << filters::toString(product);
  }
}

TEST(PassiveIdentificationTest, MatchesActiveModeOnFullBanners) {
  // With untruncated banners, offline (passive) validation of a scan dump
  // finds the same installations as live WhatWeb probing.
  PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo, /*bodySnippetLimit=*/1 << 16);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  for (const auto product : filters::allProducts()) {
    auto ips = [](const std::vector<core::Installation>& installations) {
      std::set<std::uint32_t> out;
      for (const auto& inst : installations) out.insert(inst.ip.value());
      return out;
    };
    EXPECT_EQ(ips(identifier.identify(product)),
              ips(identifier.identifyPassive(product)))
        << filters::toString(product);
  }
}

TEST(PassiveIdentificationTest, WorksOnExportedAndReimportedDumps) {
  PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);

  const auto dump = scan::exportRecords(index.records());
  const auto imported = scan::importRecords(dump);
  ASSERT_TRUE(imported);
  const auto restored = scan::BannerIndex::fromRecords(std::move(*imported));

  core::Identifier fromLive(world, index,
                            fingerprint::Engine::withBuiltinSignatures(), geo,
                            whois);
  core::Identifier fromDump(world, restored,
                            fingerprint::Engine::withBuiltinSignatures(), geo,
                            whois);
  for (const auto product : filters::allProducts())
    EXPECT_EQ(fromLive.identifyPassive(product).size(),
              fromDump.identifyPassive(product).size())
        << filters::toString(product);
}

TEST(CensusIdentificationTest, AddRecordsMergesSources) {
  PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();

  scan::CensusScanner ports80({80});
  scan::CensusScanner ports8080({8080});
  auto merged = scan::BannerIndex::fromRecords(ports80.sweep(world, geo));
  const auto before = merged.size();
  merged.addRecords(ports8080.sweep(world, geo));
  EXPECT_GT(merged.size(), before);
}

// ---------------------------------------------- HTTP submission portal ----

TEST(SubmissionPortalTest, PortalAnswersOverHttp) {
  PaperWorld paper;
  auto& vendor = paper.vendor(ProductKind::kSmartFilter);
  ASSERT_FALSE(vendor.portalUrl().empty());

  simnet::Transport transport(paper.world());
  auto* lab = paper.world().findVantage("lab-toronto");

  // Landing page lives at the portal root (portalUrl points at /submit).
  const auto portalRoot =
      "http://" + net::Url::parse(vendor.portalUrl())->host() + "/";
  const auto landing = transport.fetchUrl(*lab, portalRoot);
  ASSERT_TRUE(landing.ok());
  EXPECT_EQ(landing.response->statusCode, 200);
  EXPECT_NE(landing.response->body.find("Submit a site"), std::string::npos);

  // A valid submission creates a vendor-side ticket.
  const auto before = vendor.submissions().size();
  const auto submit = transport.fetchUrl(
      *lab, vendor.portalUrl() +
                "?url=http://freeproxyhub.com/&category=2&submitter=x@y.example");
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit.response->statusCode, 200);
  EXPECT_NE(submit.response->body.find("Ticket #"), std::string::npos);
  EXPECT_EQ(vendor.submissions().size(), before + 1);
  EXPECT_EQ(vendor.submissions().back().submitterId, "x@y.example");

  // Malformed submissions are rejected without creating tickets.
  for (const char* bad :
       {"?url=http://x/&category=2",           // missing submitter
        "?url=not-a-url&category=2&submitter=a",
        "?url=http://x/&category=999&submitter=a",
        "?url=http://x/&category=abc&submitter=a"}) {
    const auto result = transport.fetchUrl(*lab, vendor.portalUrl() + bad);
    ASSERT_TRUE(result.ok()) << bad;
    EXPECT_EQ(result.response->statusCode, 400) << bad;
  }
  EXPECT_EQ(vendor.submissions().size(), before + 1);
}

TEST(SubmissionPortalTest, CaseStudyWorksOverThePortal) {
  // The Bayanat row produces the same outcome whether the submission goes
  // through the vendor API or over simulated HTTP to the Web portal.
  PaperWorld paper;
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());
  auto config = paper.caseStudies()[0].config;
  config.submitViaHttpPortal = true;
  scenarios::advanceClockTo(paper.world(), paper.caseStudies()[0].startDate);
  const auto result = confirmer.run(config);
  EXPECT_TRUE(result.confirmed);
  EXPECT_EQ(result.blockedRatio(), "5/5");
  EXPECT_TRUE(result.notes.find("portal submission failed") ==
              std::string::npos)
      << result.notes;
}

TEST(SubmissionPortalTest, EveryVendorHasAPortalInThePaperWorld) {
  PaperWorld paper;
  for (const auto kind : filters::allProducts()) {
    const auto& url = paper.vendor(kind).portalUrl();
    ASSERT_FALSE(url.empty()) << filters::toString(kind);
    const auto parsed = net::Url::parse(url);
    ASSERT_TRUE(parsed);
    EXPECT_TRUE(paper.world().resolve(parsed->host()))
        << filters::toString(kind);
  }
}

// -------------------------------------------------- Counter-evasion ----

TEST(CounterEvasionTest, IdentityRotationDefeatsSubmitterBlacklisting) {
  // §6.2: vendors may disregard our submitter identity; rotating fresh
  // webmail identities restores the methodology.
  PaperWorld paper(scenarios::kPaperSeed, {.disregardSubmitter = true});
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());

  auto config = paper.caseStudies()[0].config;  // SmartFilter / Bayanat
  scenarios::advanceClockTo(paper.world(), paper.caseStudies()[0].startDate);

  // Without rotation: dead.
  const auto blocked = confirmer.run(config);
  EXPECT_FALSE(blocked.confirmed);

  // With rotation: alive again.
  config.submitterPool = {"alias1@webmail.example", "alias2@webmail.example",
                          "alias3@webmail.example"};
  const auto rotated = confirmer.run(config);
  EXPECT_TRUE(rotated.confirmed);
  EXPECT_EQ(rotated.submittedBlocked, 5);
}

TEST(CounterEvasionTest, PopularHostingDefeatsAsnBlacklisting) {
  // §6.2: vendors could disregard sites hosted at our provider; hosting on
  // a popular cloud makes blanket-ignoring too damaging. Model: vendor
  // blacklists a boutique ASN, researcher hosts at the big provider.
  PaperWorld paper;
  auto& world = paper.world();
  world.createAs(64999, "BOUTIQUE-HOST", "Boutique hosting", "US",
                 {net::IpPrefix::parse("203.0.0.0/16").value()});
  simnet::HostingProvider boutique(world, 64999);

  auto& vendor = paper.vendor(ProductKind::kSmartFilter);
  vendor.disregardHostingAsn(64999);

  const auto onBoutique =
      boutique.createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  const auto onCloud = paper.hosting().createFreshDomain(
      simnet::ContentProfile::kGlypeProxy);
  const auto anonymizers = vendor.scheme().byName("Anonymizers")->id;

  vendor.submitUrl(net::Url::parse("http://" + onBoutique.hostname + "/").value(),
                   anonymizers, "x@example.org");
  vendor.submitUrl(net::Url::parse("http://" + onCloud.hostname + "/").value(),
                   anonymizers, "x@example.org");
  world.clock().advanceDays(6);
  vendor.processUntil(world.now());

  ASSERT_EQ(vendor.submissions().size(), 2u);
  EXPECT_EQ(vendor.submissions()[0].state,
            filters::Submission::State::kRejected);
  EXPECT_EQ(vendor.submissions()[1].state,
            filters::Submission::State::kAccepted);
}

}  // namespace
}  // namespace urlf
