// The one-call network profiler: composition of identification, proxy
// detection, category scouting, and characterization for one network.
#include <gtest/gtest.h>

#include "core/profiler.h"
#include "scenarios/paper_world.h"

namespace urlf::core {
namespace {

using filters::ProductKind;
using scenarios::PaperWorld;

class ProfilerFixture : public ::testing::Test {
 protected:
  ProfilerFixture() {
    geo = paper.world().buildGeoDatabase();
    whois = paper.world().buildAsnDatabase();
    index.crawl(paper.world(), geo);
  }

  ProfilerSources sources(const std::string& alpha2) {
    ProfilerSources out;
    out.index = &index;
    out.geo = geo;
    out.whois = whois;
    for (const auto product : filters::allProducts())
      out.referenceSites[product] = paper.referenceSites(product);
    out.globalList = &paper.globalList();
    out.localList = &paper.localList(alpha2);
    out.echoUrl = paper.echoUrl();
    return out;
  }

  PaperWorld paper;
  geo::GeoDatabase geo;
  geo::AsnDatabase whois;
  scan::BannerIndex index;
};

TEST_F(ProfilerFixture, EtisalatProfileIsCoherent) {
  const auto profile = profileNetwork(paper.world(), "field-etisalat",
                                      "lab-toronto", sources("AE"));

  EXPECT_EQ(profile.ispName, "Etisalat");
  EXPECT_EQ(profile.countryAlpha2, "AE");

  // Installations in AE: Etisalat's ProxySG + SmartFilter and Du's
  // Netsweeper are all geolocated there.
  std::set<ProductKind> productsSeen;
  for (const auto& installation : profile.installationsInCountry) {
    EXPECT_EQ(installation.countryAlpha2, "AE");
    productsSeen.insert(installation.product);
  }
  EXPECT_TRUE(productsSeen.contains(ProductKind::kBlueCoat));
  EXPECT_TRUE(productsSeen.contains(ProductKind::kSmartFilter));
  EXPECT_TRUE(productsSeen.contains(ProductKind::kNetsweeper));

  // The path is transparently proxied by the ProxySG.
  ASSERT_TRUE(profile.proxyEvidence);
  EXPECT_TRUE(profile.proxyEvidence->proxyDetected());

  // SmartFilter category enforcement: both Anonymizers and Pornography.
  const auto& smartFilterUse =
      profile.categoryUse.at(ProductKind::kSmartFilter);
  int enforced = 0;
  for (const auto& use : smartFilterUse)
    if (use.inUse()) ++enforced;
  EXPECT_GE(enforced, 2);

  // Characterization attributes to SmartFilter and shows protected content.
  ASSERT_TRUE(profile.characterization.attributedProduct);
  EXPECT_EQ(*profile.characterization.attributedProduct,
            ProductKind::kSmartFilter);
  EXPECT_TRUE(profile.characterization.categoryBlocked("Media Freedom"));
}

TEST_F(ProfilerFixture, SaudiProfileShowsChallengeOne) {
  const auto profile = profileNetwork(paper.world(), "field-bayanat",
                                      "lab-toronto", sources("SA"));
  // No transparent proxy on the Saudi path.
  ASSERT_TRUE(profile.proxyEvidence);
  EXPECT_FALSE(profile.proxyEvidence->proxyDetected());

  // Pornography enforced, Anonymizers not (Challenge 1).
  bool pornography = false;
  bool anonymizers = true;
  for (const auto& use : profile.categoryUse.at(ProductKind::kSmartFilter)) {
    if (use.categoryName == "Pornography") pornography = use.inUse();
    if (use.categoryName == "Anonymizers") anonymizers = use.inUse();
  }
  EXPECT_TRUE(pornography);
  EXPECT_FALSE(anonymizers);
}

TEST_F(ProfilerFixture, JsonExportIsValid) {
  const auto profile = profileNetwork(paper.world(), "field-ooredoo",
                                      "lab-toronto", sources("QA"));
  const auto json = profile.toJson();
  EXPECT_EQ(*json.find("isp")->asString(), "Ooredoo");
  EXPECT_TRUE(json.find("installations_in_country")->isArray());
  EXPECT_TRUE(json.find("category_use")->isObject());
  // Round-trips through the parser.
  EXPECT_TRUE(report::Json::parse(json.dump(2)));
}

TEST_F(ProfilerFixture, SkipsProxyDetectionWithoutEchoUrl) {
  auto s = sources("AE");
  s.echoUrl.clear();
  const auto profile =
      profileNetwork(paper.world(), "field-du", "lab-toronto", s);
  EXPECT_FALSE(profile.proxyEvidence.has_value());
}

TEST_F(ProfilerFixture, ValidatesInputs) {
  auto s = sources("AE");
  EXPECT_THROW(
      (void)profileNetwork(paper.world(), "nope", "lab-toronto", s),
      std::invalid_argument);
  s.index = nullptr;
  EXPECT_THROW(
      (void)profileNetwork(paper.world(), "field-du", "lab-toronto", s),
      std::invalid_argument);
}

}  // namespace
}  // namespace urlf::core
