// Property-style parameterized suites: invariants of the confirmation
// methodology swept across all four products, policy variants, and the
// decision-rule input space.
#include <gtest/gtest.h>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "filters/registry.h"
#include "measure/blockpage.h"
#include "scan/banner_index.h"
#include "simnet/hosting.h"

namespace urlf {
namespace {

using filters::ProductKind;

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

/// The proxy-ish category each vendor scheme uses for Glype-style sites.
std::string proxyCategoryFor(ProductKind kind) {
  switch (kind) {
    case ProductKind::kBlueCoat: return "Proxy Avoidance";
    case ProductKind::kSmartFilter: return "Anonymizers";
    case ProductKind::kNetsweeper: return "Proxy Anonymizer";
    case ProductKind::kWebsense: return "Proxy Avoidance";
  }
  return "";
}

/// A single-product world: one ISP (optionally running the product with the
/// proxy category blocked), hosting, vendor infra, field + lab vantages.
struct MiniWorld {
  explicit MiniWorld(ProductKind kind, bool deployed, bool stripBranding = false,
                     std::uint64_t seed = 4242)
      : world(seed), vendor(kind, world) {
    world.createAs(100, "ISP-AS", "Mini ISP", "AE", {prefix("10.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Hosting", "US", {prefix("20.0.0.0/16")});
    world.createAs(300, "VENDOR-AS", "Vendor infra", "US",
                   {prefix("30.0.0.0/16")});
    isp = &world.createIsp("Mini ISP", "AE", {100});
    world.createVantage("field", "AE", isp);
    world.createVantage("lab", "CA", nullptr);
    vendor.installInfrastructure(300);

    if (deployed) {
      filters::FilterPolicy policy;
      policy.blockedCategories = {
          vendor.scheme().byName(proxyCategoryFor(kind))->id};
      policy.stripBranding = stripBranding;
      deployment = &filters::makeDeployment(world, kind, "mini-deployment",
                                            vendor, std::move(policy));
      deployment->installExternalSurfaces(world, 100);
      isp->attachMiddlebox(*deployment);
    }
    hosting = std::make_unique<simnet::HostingProvider>(world, 200);
  }

  core::CaseStudyConfig config() const {
    core::CaseStudyConfig out;
    out.product = vendor.kind();
    out.ispName = "Mini ISP";
    out.countryAlpha2 = "AE";
    out.fieldVantage = "field";
    out.labVantage = "lab";
    out.categoryName = proxyCategoryFor(vendor.kind());
    out.profile = simnet::ContentProfile::kGlypeProxy;
    out.totalSites = 6;
    out.sitesToSubmit = 3;
    out.waitDays = 5;
    return out;
  }

  core::CaseStudyResult confirm() {
    core::VendorSet vendors;
    vendors.add(vendor);
    core::Confirmer confirmer(world, *hosting, vendors);
    return confirmer.run(config());
  }

  simnet::World world;
  filters::Vendor vendor;
  simnet::Isp* isp = nullptr;
  filters::Deployment* deployment = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
};

// -------------------------------------------------- Confirmation matrix ----

/// Invariant: the methodology confirms a product exactly when that product
/// is deployed and enforcing the submitted category — for every product.
class ConfirmationMatrix
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ConfirmationMatrix, ConfirmedIffDeployed) {
  const auto [productIndex, deployed] = GetParam();
  const auto kind = static_cast<ProductKind>(productIndex);
  MiniWorld mini(kind, deployed);
  const auto result = mini.confirm();
  EXPECT_EQ(result.confirmed, deployed)
      << filters::toString(kind) << " deployed=" << deployed;
  if (deployed) {
    EXPECT_EQ(result.submittedBlocked, 3);
    EXPECT_EQ(result.attributedToProduct, 3);
    EXPECT_EQ(result.controlBlocked, 0);
  } else {
    EXPECT_EQ(result.submittedBlocked, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProducts, ConfirmationMatrix,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Bool()));

// --------------------------------------------- Cross-product submission ----

/// Invariant: submitting to vendor A never triggers blocking by deployed
/// product B (the generalization behind the paper's Table 3 negatives).
class CrossProductSubmission
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossProductSubmission, ForeignSubmissionsNeverBlock) {
  const auto [deployedIndex, submittedIndex] = GetParam();
  if (deployedIndex == submittedIndex) GTEST_SKIP();
  const auto deployedKind = static_cast<ProductKind>(deployedIndex);
  const auto submittedKind = static_cast<ProductKind>(submittedIndex);

  MiniWorld mini(deployedKind, /*deployed=*/true);
  filters::Vendor otherVendor(submittedKind, mini.world);

  core::VendorSet vendors;
  vendors.add(mini.vendor);
  vendors.add(otherVendor);
  core::Confirmer confirmer(mini.world, *mini.hosting, vendors);

  auto config = mini.config();
  config.product = submittedKind;
  config.categoryName = proxyCategoryFor(submittedKind);
  const auto result = confirmer.run(config);
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);
}

INSTANTIATE_TEST_SUITE_P(Pairs, CrossProductSubmission,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 3)));

// ----------------------------------------------- Block-page attribution ----

/// Documented attribution behaviour under branding stripping: Blue Coat and
/// SmartFilter become unattributable (their signatures are cosmetic), while
/// Netsweeper and Websense remain attributable through the structural
/// redirect to their block-page service ports.
class StripBrandingAttribution : public ::testing::TestWithParam<int> {};

TEST_P(StripBrandingAttribution, MatchesDocumentedMatrix) {
  const auto kind = static_cast<ProductKind>(GetParam());
  MiniWorld mini(kind, /*deployed=*/true, /*stripBranding=*/true);
  const auto result = mini.confirm();

  // Blocking always still happens.
  EXPECT_EQ(result.submittedBlocked, 3);

  const bool structurallyAttributable =
      kind == ProductKind::kNetsweeper || kind == ProductKind::kWebsense;
  EXPECT_EQ(result.confirmed, structurallyAttributable)
      << filters::toString(kind);
  EXPECT_EQ(result.attributedToProduct, structurallyAttributable ? 3 : 0);
}

INSTANTIATE_TEST_SUITE_P(AllProducts, StripBrandingAttribution,
                         ::testing::Values(0, 1, 2, 3));

// ------------------------------------------------------- Decision rule ----

/// Sweep the decision-rule input space: confirmed ⇔ both counts reach
/// ceil(2k/3).
class DecisionRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(DecisionRuleSweep, TwoThirdsThreshold) {
  const int k = GetParam();
  const int needed = (2 * k + 2) / 3;
  for (int blocked = 0; blocked <= k; ++blocked) {
    for (int attributed = 0; attributed <= blocked; ++attributed) {
      const bool expected = blocked >= needed && attributed >= needed;
      EXPECT_EQ(core::Confirmer::decide(blocked, attributed, k), expected)
          << "k=" << k << " blocked=" << blocked
          << " attributed=" << attributed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SubmissionSizes, DecisionRuleSweep,
                         ::testing::Values(1, 2, 3, 5, 6, 10));

TEST(DecisionRuleTest, PaperRows) {
  // Confirmed rows: 5/5, 5/6, 6/6; unconfirmed: 0/3, 0/5.
  EXPECT_TRUE(core::Confirmer::decide(5, 5, 5));
  EXPECT_TRUE(core::Confirmer::decide(5, 5, 6));
  EXPECT_TRUE(core::Confirmer::decide(6, 6, 6));
  EXPECT_FALSE(core::Confirmer::decide(0, 0, 3));
  EXPECT_FALSE(core::Confirmer::decide(0, 0, 5));
  EXPECT_FALSE(core::Confirmer::decide(0, 0, 0));
}

// ----------------------------------------------- Keyword discoverability ----

/// Invariant: every deployed product is discoverable by at least one of its
/// own Table 2 keywords over a banner crawl (the premise of §3.1).
class KeywordDiscoverability : public ::testing::TestWithParam<int> {};

TEST_P(KeywordDiscoverability, OwnKeywordsFindOwnSurfaces) {
  const auto kind = static_cast<ProductKind>(GetParam());
  MiniWorld mini(kind, /*deployed=*/true);

  const auto geo = mini.world.buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(mini.world, geo);

  bool found = false;
  for (const auto& keyword : core::Identifier::shodanKeywords(kind)) {
    for (const auto* record : index.search({keyword, std::nullopt})) {
      if (record->ip == mini.deployment->serviceIp()) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found) << filters::toString(kind);
}

INSTANTIATE_TEST_SUITE_P(AllProducts, KeywordDiscoverability,
                         ::testing::Values(0, 1, 2, 3));

// ------------------------------------------------- Campaign determinism ----

/// Invariant: the whole mini-campaign is a pure function of the seed.
class CampaignDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignDeterminism, SameSeedSameOutcome) {
  auto runOnce = [&](std::uint64_t seed) {
    MiniWorld mini(ProductKind::kNetsweeper, true, false, seed);
    const auto result = mini.confirm();
    std::string fingerprint = result.blockedRatio();
    for (const auto& url : result.submittedUrls) fingerprint += "|" + url;
    return fingerprint;
  };
  EXPECT_EQ(runOnce(GetParam()), runOnce(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignDeterminism,
                         ::testing::Values(1u, 42u, 20131023u, 987654321u));

// ----------------------------------------------------- Verdict symmetry ----

/// Invariant: in a world with no filtering at all, every fresh domain tests
/// accessible from the field, whatever its content.
class NoFilterWorld : public ::testing::TestWithParam<int> {};

TEST_P(NoFilterWorld, EverythingAccessible) {
  const auto profile = static_cast<simnet::ContentProfile>(GetParam());
  MiniWorld mini(ProductKind::kSmartFilter, /*deployed=*/false);
  const auto domain = mini.hosting->createFreshDomain(profile);

  measure::Client client(mini.world, *mini.world.findVantage("field"),
                         *mini.world.findVantage("lab"));
  const auto result = client.testUrl("http://" + domain.hostname + "/");
  EXPECT_EQ(result.verdict, measure::Verdict::kAccessible);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, NoFilterWorld,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace urlf
