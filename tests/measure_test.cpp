#include <gtest/gtest.h>

#include "filters/netsweeper.h"
#include "filters/smartfilter.h"
#include "filters/vendor.h"
#include "measure/blockpage.h"
#include "measure/client.h"
#include "measure/testlist.h"
#include "simnet/hosting.h"

namespace urlf::measure {
namespace {

using filters::ProductKind;

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

// ---------------------------------------------------------- Testlists ----

TEST(TestListTest, FortyOniCategoriesAcrossFourThemes) {
  EXPECT_EQ(oniCategories().size(), 40u);
  std::map<Theme, int> perTheme;
  for (const auto& category : oniCategories()) ++perTheme[category.theme];
  EXPECT_EQ(perTheme.size(), 4u);
  for (const auto& [theme, count] : perTheme) EXPECT_EQ(count, 10);
}

TEST(TestListTest, Table4ColumnsExist) {
  for (const char* name :
       {"Media Freedom", "Human Rights", "Political Reform", "LGBT",
        "Religious Criticism", "Minority Groups and Religions"}) {
    EXPECT_TRUE(oniCategoryByName(name)) << name;
  }
}

TEST(TestListTest, CategoryLookupCaseInsensitive) {
  EXPECT_TRUE(oniCategoryByName("lgbt"));
  EXPECT_FALSE(oniCategoryByName("Nonexistent"));
}

TEST(TestListTest, UrlsExtraction) {
  TestList list{"global",
                {{"http://a.example/", "LGBT"}, {"http://b.example/", "VoIP"}}};
  EXPECT_EQ(list.urls(),
            (std::vector<std::string>{"http://a.example/", "http://b.example/"}));
}

// --------------------------------------------------------- Block pages ----

class MeasureFixture : public ::testing::Test {
 protected:
  MeasureFixture() : world(321) {
    world.createAs(100, "ISP-AS", "Field ISP", "AE", {prefix("10.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Hosting", "US", {prefix("20.0.0.0/16")});
    isp = &world.createIsp("Field ISP", "AE", {100});
    field = &world.createVantage("field", "AE", isp);
    lab = &world.createVantage("lab", "CA", nullptr);
    hosting = std::make_unique<simnet::HostingProvider>(world, 200);
  }

  /// Deploy a SmartFilter blocking Pornography and return a blocked URL.
  std::string deploySmartFilterAndBlockedUrl() {
    vendor = std::make_unique<filters::Vendor>(ProductKind::kSmartFilter,
                                               world);
    filters::FilterPolicy policy;
    policy.blockedCategories = {1};
    auto& deployment = world.makeMiddlebox<filters::SmartFilterDeployment>(
        "SF", *vendor, policy);
    deployment.installExternalSurfaces(world, 100);
    isp->attachMiddlebox(deployment);
    const auto domain =
        hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
    vendor->masterDb().addHost(domain.hostname, 1);
    return "http://" + domain.hostname + "/";
  }

  simnet::World world;
  simnet::Isp* isp = nullptr;
  simnet::VantagePoint* field = nullptr;
  simnet::VantagePoint* lab = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
  std::unique_ptr<filters::Vendor> vendor;
};

TEST_F(MeasureFixture, ClassifiesSmartFilterBlockPage) {
  const auto url = deploySmartFilterAndBlockedUrl();
  simnet::Transport transport(world);
  const auto fetch = transport.fetchUrl(*field, url);
  const auto match = classifyBlockPage(fetch);
  ASSERT_TRUE(match);
  EXPECT_EQ(match->product, ProductKind::kSmartFilter);
  EXPECT_EQ(match->patternName, "smartfilter-via-header");
  EXPECT_FALSE(match->evidence.empty());
}

TEST_F(MeasureFixture, ClassifiesNetsweeperDenyByRedirectEvenWhenDebranded) {
  filters::Vendor netsweeper(ProductKind::kNetsweeper, world);
  filters::FilterPolicy policy;
  policy.blockedCategories = {43};
  policy.stripBranding = true;  // unbranded deny page
  auto& deployment = world.makeMiddlebox<filters::NetsweeperDeployment>(
      "NS", netsweeper, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  netsweeper.masterDb().addHost(domain.hostname, 43);

  simnet::Transport transport(world);
  const auto fetch =
      transport.fetchUrl(*field, "http://" + domain.hostname + "/");
  const auto match = classifyBlockPage(fetch);
  // The structural redirect to :8080/webadmin/deny still gives it away.
  ASSERT_TRUE(match);
  EXPECT_EQ(match->product, ProductKind::kNetsweeper);
  EXPECT_EQ(match->patternName, "netsweeper-deny-redirect");
}

TEST_F(MeasureFixture, OrdinaryPageIsNotABlockPage) {
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  simnet::Transport transport(world);
  const auto fetch =
      transport.fetchUrl(*lab, "http://" + domain.hostname + "/");
  EXPECT_FALSE(classifyBlockPage(fetch));
}

TEST_F(MeasureFixture, FetchTraceIncludesRedirectChain) {
  const auto url = deploySmartFilterAndBlockedUrl();
  simnet::Transport transport(world);
  const auto fetch = transport.fetchUrl(*field, url);
  const auto trace = fetchTrace(fetch);
  EXPECT_NE(trace.find("403"), std::string::npos);
}

TEST(BlockPagePatternsTest, LibraryCoversAllFourProducts) {
  std::set<ProductKind> covered;
  for (const auto& pattern : builtinBlockPagePatterns())
    covered.insert(pattern.product);
  EXPECT_EQ(covered.size(), 4u);
}

// ------------------------------------------------------------- Client ----

TEST_F(MeasureFixture, AccessibleVerdictWhenFieldMatchesLab) {
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  Client client(world, *field, *lab);
  const auto result = client.testUrl("http://" + domain.hostname + "/");
  EXPECT_EQ(result.verdict, Verdict::kAccessible);
  EXPECT_FALSE(result.blocked());
}

TEST_F(MeasureFixture, BlockedVerdictWithProductAttribution) {
  const auto url = deploySmartFilterAndBlockedUrl();
  Client client(world, *field, *lab);
  const auto result = client.testUrl(url);
  EXPECT_EQ(result.verdict, Verdict::kBlocked);
  EXPECT_TRUE(result.blocked());
  ASSERT_TRUE(result.blockPage);
  EXPECT_EQ(result.blockPage->product, ProductKind::kSmartFilter);
}

TEST_F(MeasureFixture, ErrorVerdictWhenSiteIsDownEverywhere) {
  Client client(world, *field, *lab);
  const auto result = client.testUrl("http://no-such-site.example/");
  EXPECT_EQ(result.verdict, Verdict::kError);
}

TEST_F(MeasureFixture, BlockedOtherOnReset) {
  struct Resetter : simnet::Middlebox {
    std::string name() const override { return "rst"; }
    std::optional<simnet::InterceptAction> intercept(
        http::Request&, const simnet::InterceptContext&) override {
      return simnet::InterceptAction::reset();
    }
  };
  isp->attachMiddlebox(world.makeMiddlebox<Resetter>());
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  Client client(world, *field, *lab);
  const auto result = client.testUrl("http://" + domain.hostname + "/");
  EXPECT_EQ(result.verdict, Verdict::kBlockedOther);
  EXPECT_TRUE(result.blocked());
  EXPECT_FALSE(result.blockPage);
}

TEST_F(MeasureFixture, InconclusiveOnContentRewriting) {
  struct Rewriter : simnet::Middlebox {
    std::string name() const override { return "rewrite"; }
    std::optional<simnet::InterceptAction> intercept(
        http::Request&, const simnet::InterceptContext&) override {
      return std::nullopt;
    }
    void postProcess(const http::Request&, http::Response& response,
                     const simnet::InterceptContext&) override {
      response.body += "<!-- injected -->";
    }
  };
  isp->attachMiddlebox(world.makeMiddlebox<Rewriter>());
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  Client client(world, *field, *lab);
  const auto result = client.testUrl("http://" + domain.hostname + "/");
  EXPECT_EQ(result.verdict, Verdict::kInconclusive);
}

TEST_F(MeasureFixture, TestListPreservesOrder) {
  const auto a = hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  const auto b = hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  Client client(world, *field, *lab);
  const std::vector<std::string> urls{"http://" + a.hostname + "/",
                                      "http://" + b.hostname + "/"};
  const auto results = client.testList(urls);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].url, urls[0]);
  EXPECT_EQ(results[1].url, urls[1]);
}

TEST(VerdictTest, ToStringCoversAll) {
  EXPECT_EQ(toString(Verdict::kAccessible), "accessible");
  EXPECT_EQ(toString(Verdict::kBlocked), "blocked");
  EXPECT_EQ(toString(Verdict::kBlockedOther), "blocked-other");
  EXPECT_EQ(toString(Verdict::kInconclusive), "inconclusive");
  EXPECT_EQ(toString(Verdict::kError), "error");
}

}  // namespace
}  // namespace urlf::measure
