// Equivalence properties of streaming world generation (DESIGN.md §4.5):
//  - streamed hosts are a pure function of (seed, id), with hostAt as the
//    exact inverse of host();
//  - shards() partitions the id space contiguously for any target size;
//  - crawlStream over a stream-attached world is byte-identical to
//    BannerIndex::crawl over the eagerly materialized reference world —
//    records, searches, and identifyAll results all agree, for any shard
//    granularity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/identifier.h"
#include "core/serialize.h"
#include "net/cctld.h"
#include "scan/banner_index.h"
#include "scan/serialize.h"
#include "scenarios/random_world.h"
#include "simnet/world_stream.h"

namespace urlf::simnet {
namespace {

ProceduralHostConfig smallStream() {
  ProceduralHostConfig config;
  config.hosts = 1200;
  config.countries = 5;
  config.baitFraction = 0.05;
  return config;
}

scenarios::RandomWorldConfig smallWorld() {
  scenarios::RandomWorldConfig config;
  config.countries = 6;
  config.decoys = 8;
  config.contentSites = 6;
  return config;
}

TEST(WorldStreamProperty, HostIsPureAndHostAtIsItsInverse) {
  const ProceduralHostStream stream(4242, smallStream());
  ASSERT_EQ(stream.hostCount(), 1200u);

  for (std::uint64_t id = 0; id < stream.hostCount(); id += 37) {
    const auto a = stream.host(id);
    const auto b = stream.host(id);
    EXPECT_EQ(a.id, id);
    EXPECT_EQ(a.hostname, b.hostname);
    EXPECT_EQ(a.ip.value(), b.ip.value());
    EXPECT_EQ(a.countryAlpha2, b.countryAlpha2);
    EXPECT_EQ(a.serverHeader, b.serverHeader);
    EXPECT_EQ(a.page.title, b.page.title);
    EXPECT_EQ(a.page.body, b.page.body);

    const auto inverse = stream.hostAt(a.ip, a.port);
    ASSERT_TRUE(inverse.has_value()) << "id=" << id;
    EXPECT_EQ(*inverse, id);
    EXPECT_FALSE(stream.hostAt(a.ip, a.port + 1).has_value());
  }
  EXPECT_THROW((void)stream.host(stream.hostCount()), std::out_of_range);
}

TEST(WorldStreamProperty, ShardsPartitionTheIdSpaceAtAnyGranularity) {
  const ProceduralHostStream stream(7, smallStream());
  for (const std::uint64_t target : {1ull, 7ull, 97ull, 100000000ull}) {
    const auto shards = stream.shards(target);
    std::uint64_t next = 0;
    for (const auto& shard : shards) {
      EXPECT_EQ(shard.begin, next);
      EXPECT_LT(shard.begin, shard.end);
      EXPECT_LE(shard.end - shard.begin, target);
      EXPECT_FALSE(shard.label.empty());
      next = shard.end;
    }
    EXPECT_EQ(next, stream.hostCount()) << "target=" << target;
  }
}

/// Build the streamed world (stream attached, nothing bound) and the eager
/// reference twin (every streamed host bound in id order, after the same
/// random-world construction), then check observational equivalence.
struct TwinWorlds {
  scenarios::RandomWorld streamed;
  scenarios::RandomWorld eager;
  std::shared_ptr<ProceduralHostStream> stream;

  TwinWorlds(std::uint64_t seed, const ProceduralHostConfig& config)
      : streamed(seed, smallWorld()),
        eager(seed, smallWorld()),
        stream(std::make_shared<ProceduralHostStream>(seed * 31 + 1, config)) {
    stream->announceInto(streamed.world());
    streamed.world().attachHostStream(stream);

    stream->announceInto(eager.world());
    stream->materializeInto(eager.world());
  }
};

TEST(WorldStreamProperty, StreamedCrawlIsByteIdenticalToEagerReference) {
  for (const std::uint64_t hostsPerShard : {97ull, 1000000ull}) {
    TwinWorlds twins(11, smallStream());
    const auto geoStreamed = twins.streamed.world().buildGeoDatabase();
    const auto geoEager = twins.eager.world().buildGeoDatabase();

    scan::StreamCrawlOptions options;
    options.hostsPerShard = hostsPerShard;
    const auto sharded =
        scan::crawlStream(twins.streamed.world(), geoStreamed, options);

    scan::BannerIndex reference;
    reference.crawl(twins.eager.world(), geoEager);

    ASSERT_EQ(sharded.docCount(), reference.size());
    ASSERT_GT(sharded.docCount(), 0u);

    // Every re-fetched streamed record equals the eagerly crawled one.
    std::vector<scan::BannerRecord> fetched;
    for (std::uint32_t doc = 0; doc < sharded.docCount(); ++doc)
      fetched.push_back(sharded.fetchRecord(doc));
    EXPECT_EQ(scan::exportRecords(fetched, 0),
              scan::exportRecords(reference.records(), 0));

    // The §3.1 keyword×country fan-out returns the same surfaces.
    std::vector<scan::Query> queries;
    for (const auto product : filters::allProducts()) {
      for (const auto& keyword : core::Identifier::shodanKeywords(product)) {
        queries.push_back({keyword, std::nullopt});
        for (const auto& country : net::allCountries())
          queries.push_back({keyword, std::string(country.alpha2)});
      }
    }
    const auto shardedDocs = sharded.searchAll(queries);
    const auto referenceHits = reference.searchAll(queries);
    ASSERT_EQ(shardedDocs.size(), referenceHits.size());
    for (std::size_t i = 0; i < shardedDocs.size(); ++i) {
      const auto surface = sharded.surface(shardedDocs[i]);
      EXPECT_EQ(surface.ip.value(), referenceHits[i]->ip.value());
      EXPECT_EQ(surface.port, referenceHits[i]->port);
    }
    EXPECT_GT(shardedDocs.size(), 0u)
        << "bait fraction should have planted keyword candidates";

    EXPECT_EQ(sharded.vocabularySize(), reference.vocabularySize());
  }
}

TEST(WorldStreamProperty, IdentifyAllAgreesAcrossStreamedAndEagerWorlds) {
  TwinWorlds twins(23, smallStream());
  const auto geoStreamed = twins.streamed.world().buildGeoDatabase();
  const auto geoEager = twins.eager.world().buildGeoDatabase();

  const auto sharded = scan::crawlStream(twins.streamed.world(), geoStreamed);
  scan::BannerIndex reference;
  reference.crawl(twins.eager.world(), geoEager);

  const core::Identifier streamedId(
      twins.streamed.world(), sharded,
      fingerprint::Engine::withBuiltinSignatures(), geoStreamed,
      twins.streamed.world().buildAsnDatabase());
  const core::Identifier eagerId(
      twins.eager.world(), reference,
      fingerprint::Engine::withBuiltinSignatures(), geoEager,
      twins.eager.world().buildAsnDatabase());

  const auto fromStream = streamedId.identifyAll();
  const auto fromEager = eagerId.identifyAll();
  EXPECT_EQ(core::toJson(fromStream).dump(2), core::toJson(fromEager).dump(2));

  // Passive mode exercises the record fetcher instead of live probes.
  const auto passiveStream = streamedId.identifyAllPassive();
  const auto passiveEager = eagerId.identifyAllPassive();
  EXPECT_EQ(core::toJson(passiveStream).dump(2),
            core::toJson(passiveEager).dump(2));
}

TEST(WorldStreamProperty, SerialAndParallelStreamCrawlsAgree) {
  TwinWorlds a(5, smallStream());
  TwinWorlds b(5, smallStream());
  const auto geoA = a.streamed.world().buildGeoDatabase();
  const auto geoB = b.streamed.world().buildGeoDatabase();

  scan::StreamCrawlOptions serialOptions;
  serialOptions.threadLimit = 1;
  const auto serial = scan::crawlStream(a.streamed.world(), geoA, serialOptions);
  const auto parallel = scan::crawlStream(b.streamed.world(), geoB);

  EXPECT_EQ(scan::exportShardedIndex(serial),
            scan::exportShardedIndex(parallel));
}

}  // namespace
}  // namespace urlf::simnet
