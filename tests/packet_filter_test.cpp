// Unit tests for the packet-level flow layer (DESIGN.md §4.8): the shared
// FlowTable conntrack and the four packet-filter mechanism models, pinned
// down to the client-visible FailureSignature and the simulator-side
// FailureCause each one produces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simnet/flow.h"
#include "simnet/origin_server.h"
#include "simnet/packet_filter.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace {

using namespace urlf;
using simnet::FailureCause;
using simnet::FailureSignature;
using simnet::FetchOutcome;

// --- FlowTable ------------------------------------------------------------

TEST(FlowTableTest, TrackIsBookkeepingOnly) {
  simnet::FlowTable table;
  const simnet::FlowKey key{"field", "example.org", 80};
  EXPECT_EQ(table.stateEpoch(), 0u);

  table.track(key, util::SimTime{10});
  table.track(key, util::SimTime{11});
  EXPECT_EQ(table.stateEpoch(), 0u) << "tracking must not invalidate memos";
  const auto* entry = table.find(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->flowsSeen, 2u);
  EXPECT_EQ(entry->lastSeen, util::SimTime{11});
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, KillCountersStayOutOfTheEpoch) {
  simnet::FlowTable table;
  const simnet::FlowKey key{"field", "example.org", 80};
  table.recordKill(key, util::SimTime{5});
  table.recordKill(key, util::SimTime{6});
  EXPECT_EQ(table.totalKills(), 2u);
  EXPECT_EQ(table.find(key)->kills, 2u);
  EXPECT_EQ(table.stateEpoch(), 0u);
}

TEST(FlowTableTest, ArmResidualBumpsEpochOnlyWhenExtending) {
  simnet::FlowTable table;
  const simnet::FlowKey key{"field", "example.org", 80};
  EXPECT_FALSE(table.residualActive(key, util::SimTime{0}));

  // The window is half-open: active while now < until.
  table.armResidual(key, util::SimTime{10}, util::SimTime{34});
  EXPECT_EQ(table.stateEpoch(), 1u);
  EXPECT_TRUE(table.residualActive(key, util::SimTime{10}));
  EXPECT_TRUE(table.residualActive(key, util::SimTime{33}));
  EXPECT_FALSE(table.residualActive(key, util::SimTime{34}));

  // Re-arming inside the window with an earlier expiry changes nothing.
  table.armResidual(key, util::SimTime{11}, util::SimTime{20});
  EXPECT_EQ(table.stateEpoch(), 1u);
  EXPECT_TRUE(table.residualActive(key, util::SimTime{33}));

  // Extending the window is decision-relevant and bumps the epoch.
  table.armResidual(key, util::SimTime{12}, util::SimTime{60});
  EXPECT_EQ(table.stateEpoch(), 2u);
  EXPECT_TRUE(table.residualActive(key, util::SimTime{59}));
  EXPECT_FALSE(table.residualActive(key, util::SimTime{60}));

  // Other keys are unaffected.
  EXPECT_FALSE(table.residualActive({"field", "other.org", 80},
                                    util::SimTime{12}));
}

// --- filter models over the transport -------------------------------------

struct PacketWorld {
  simnet::World world{20130813};
  simnet::Isp* isp = nullptr;
  const simnet::VantagePoint* field = nullptr;
  const simnet::VantagePoint* lab = nullptr;

  PacketWorld() {
    world.createAs(64500, "TESTNET", "Testland Telecom", "TL",
                   {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24},
                                  16}});
    isp = &world.createIsp("Testland Telecom", "TL", {64500});
    field = &world.createVantage("field-testland", "TL", isp);
    lab = &world.createVantage("lab-control", "CA", nullptr);
  }

  void addSite(const std::string& host, std::uint16_t port = 80) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    page.body = "<h1>" + host + "</h1>";
    server.setPage("/", std::move(page));
    const auto ip = world.allocateAddress(64500);
    world.bind(ip, port, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  }
};

TEST(PacketFilterTest, DnsPoisonerForgesNxdomainForFieldOnly) {
  PacketWorld pw;
  pw.addSite("blocked.example");
  pw.addSite("open.example");
  auto& poisoner = pw.world.makePacketFilter<simnet::DnsPoisoner>(
      "poisoner", simnet::DnsTamper::Kind::kNxdomain);
  poisoner.poisonZone("blocked.example");
  pw.isp->attachPacketFilter(poisoner);

  simnet::Transport transport(pw.world);
  const auto field =
      transport.fetchUrl(*pw.field, "http://blocked.example/");
  EXPECT_EQ(field.outcome, FetchOutcome::kDnsFailure);
  EXPECT_EQ(field.signature, FailureSignature::kEmptyDns);
  EXPECT_EQ(field.cause, FailureCause::kPacketFilter);

  // Subdomains of a poisoned zone match; unrelated hosts do not.
  EXPECT_FALSE(
      transport.resolveFrom(*pw.field, "www.blocked.example").has_value());
  EXPECT_TRUE(transport.fetchUrl(*pw.field, "http://open.example/").ok());

  // The lab vantage has no ISP, so its queries never cross the filter.
  EXPECT_TRUE(transport.fetchUrl(*pw.lab, "http://blocked.example/").ok());
  EXPECT_GE(poisoner.queriesPoisoned(), 2u);
}

TEST(PacketFilterTest, DnsPoisonerForgedModeSinkholesResolution) {
  PacketWorld pw;
  pw.addSite("blocked.example");
  const auto sinkhole = net::Ipv4Addr{(std::uint32_t{10} << 24) | 0xFFFF};
  auto& poisoner = pw.world.makePacketFilter<simnet::DnsPoisoner>(
      "sinkholer", simnet::DnsTamper::Kind::kForged, sinkhole);
  poisoner.poisonZone("blocked.example");
  pw.isp->attachPacketFilter(poisoner);

  simnet::Transport transport(pw.world);
  const auto forged = transport.resolveFrom(*pw.field, "blocked.example");
  ASSERT_TRUE(forged.has_value());
  EXPECT_EQ(*forged, sinkhole);
  const auto honest = transport.resolveFrom(*pw.lab, "blocked.example");
  ASSERT_TRUE(honest.has_value());
  EXPECT_NE(*honest, sinkhole);
}

TEST(PacketFilterTest, StatelessRstInjectorAlwaysKillsAfterRequest) {
  PacketWorld pw;
  pw.addSite("keyword.example");
  auto& injector = pw.world.makePacketFilter<simnet::RstInjector>(
      "injector", std::vector<std::string>{"keyword.example"},
      /*holdDownHours=*/0);
  pw.isp->attachPacketFilter(injector);
  EXPECT_FALSE(injector.decisionHasSideEffects());

  simnet::Transport transport(pw.world);
  for (int trial = 0; trial < 3; ++trial) {
    const auto result =
        transport.fetchUrl(*pw.field, "http://keyword.example/");
    EXPECT_EQ(result.outcome, FetchOutcome::kReset);
    EXPECT_EQ(result.signature, FailureSignature::kRstAfterRequest)
        << "a stateless injector has no hold-down; every kill waits for "
           "the request bytes";
    EXPECT_EQ(result.cause, FailureCause::kPacketFilter);
  }
  EXPECT_EQ(injector.resetsInjected(), 3u);
  EXPECT_EQ(injector.residualKills(), 0u);
  EXPECT_EQ(pw.world.flows().stateEpoch(), 0u);
}

TEST(PacketFilterTest, StatefulRstInjectorArmsResidualHoldDown) {
  PacketWorld pw;
  pw.addSite("keyword.example");
  auto& injector = pw.world.makePacketFilter<simnet::RstInjector>(
      "injector", std::vector<std::string>{"keyword.example"},
      /*holdDownHours=*/24);
  pw.isp->attachPacketFilter(injector);
  EXPECT_TRUE(injector.decisionHasSideEffects());

  simnet::Transport transport(pw.world);
  const auto epochBefore = pw.world.middleboxStateEpoch();
  const auto first = transport.fetchUrl(*pw.field, "http://keyword.example/");
  EXPECT_EQ(first.signature, FailureSignature::kRstAfterRequest);
  EXPECT_GT(pw.world.middleboxStateEpoch(), epochBefore)
      << "arming the hold-down must invalidate verdict memos";

  // Inside the window every flow to the destination dies pre-banner.
  const auto second = transport.fetchUrl(*pw.field, "http://keyword.example/");
  EXPECT_EQ(second.signature, FailureSignature::kRstBeforeBanner);
  EXPECT_EQ(second.cause, FailureCause::kPacketFilter);
  EXPECT_EQ(injector.residualKills(), 1u);

  // Past the window the injector is back to needing the request bytes.
  pw.world.clock().advanceHours(25);
  const auto third = transport.fetchUrl(*pw.field, "http://keyword.example/");
  EXPECT_EQ(third.signature, FailureSignature::kRstAfterRequest);
}

TEST(PacketFilterTest, SniFilterKillsHandshakeButFailsOpenWithoutSni) {
  PacketWorld pw;
  pw.addSite("secure.example", 443);
  pw.addSite("cleartext.example", 80);
  auto& filter = pw.world.makePacketFilter<simnet::SniFilter>(
      "sni", std::vector<std::string>{"secure.example"});
  pw.isp->attachPacketFilter(filter);

  simnet::Transport transport(pw.world);
  const auto killed = transport.fetchUrl(*pw.field, "https://secure.example/");
  EXPECT_EQ(killed.outcome, FetchOutcome::kReset);
  EXPECT_EQ(killed.signature, FailureSignature::kRstBeforeBanner);
  EXPECT_EQ(killed.cause, FailureCause::kPacketFilter);

  // ESNI/ECH-style omission: no server name in the hello, filter fails open.
  simnet::FetchOptions omit;
  omit.omitSni = true;
  const auto evaded =
      transport.fetchUrl(*pw.field, "https://secure.example/", omit);
  EXPECT_TRUE(evaded.ok());
  EXPECT_EQ(filter.handshakesKilled(), 1u);
  EXPECT_GE(filter.esniPassed(), 1u);

  // Cleartext flows never reach an SNI filter.
  EXPECT_TRUE(transport.fetchUrl(*pw.field, "http://cleartext.example/").ok());
}

TEST(PacketFilterTest, NullRouteBlackholesTheSyn) {
  PacketWorld pw;
  pw.addSite("routed.example");
  auto& filter = pw.world.makePacketFilter<simnet::NullRouteFilter>(
      "blackhole", std::vector<std::string>{"routed.example"});
  pw.isp->attachPacketFilter(filter);

  simnet::Transport transport(pw.world);
  const auto result = transport.fetchUrl(*pw.field, "http://routed.example/");
  EXPECT_EQ(result.outcome, FetchOutcome::kTimeout);
  EXPECT_EQ(result.signature, FailureSignature::kTimeout);
  EXPECT_EQ(result.cause, FailureCause::kPacketFilter);
  EXPECT_EQ(filter.flowsBlackholed(), 1u);
  EXPECT_TRUE(transport.fetchUrl(*pw.lab, "http://routed.example/").ok());
}

TEST(PacketFilterTest, OrganicFailuresKeepOrganicCause) {
  PacketWorld pw;
  pw.addSite("alive.example");
  simnet::Transport transport(pw.world);

  const auto noDns = transport.fetchUrl(*pw.field, "http://nodns.example/");
  EXPECT_EQ(noDns.outcome, FetchOutcome::kDnsFailure);
  EXPECT_EQ(noDns.cause, FailureCause::kOrganic);

  const auto noListener =
      transport.fetchUrl(*pw.field, "http://alive.example:8080/");
  EXPECT_EQ(noListener.outcome, FetchOutcome::kConnectFailure);
  EXPECT_EQ(noListener.cause, FailureCause::kOrganic);
}

}  // namespace
