// The historical Yemen/Websense narrative (§2.2, §4.4, [25], [35]):
// inconsistent blocking from an under-licensed deployment, confirmation in
// spite of it, and the policy impact of the vendor withdrawing updates.
#include <gtest/gtest.h>

#include "core/confirmer.h"
#include "fingerprint/engine.h"
#include "measure/client.h"
#include "scenarios/yemen2009.h"
#include "simnet/transport.h"

namespace urlf::scenarios {
namespace {

TEST(Yemen2009Test, LicenseModelProducesInconsistentBlocking) {
  Yemen2009 yemen;
  auto& world = yemen.world();

  const auto domain =
      yemen.hosting().createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  yemen.websense().masterDb().addHost(
      domain.hostname,
      yemen.websense().scheme().byName("Proxy Avoidance")->id);

  auto* field = world.findVantage("field-yemennet-2009");
  simnet::Transport transport(world);

  int blocked = 0;
  int open = 0;
  // Sample across a full day so both license regimes are hit.
  for (int hour = 0; hour < 48; ++hour) {
    const auto result =
        transport.fetchUrl(*field, "http://" + domain.hostname + "/");
    ASSERT_TRUE(result.ok());
    (result.response->statusCode == 200 ? open : blocked) += 1;
    world.clock().advanceHours(1);
  }
  // The paper's observation: the same URL is blocked in some runs and
  // accessible in others.
  EXPECT_GT(blocked, 0);
  EXPECT_GT(open, 0);
}

TEST(Yemen2009Test, ConfirmationSucceedsDespiteInconsistency) {
  Yemen2009 yemen;
  core::Confirmer confirmer(yemen.world(), yemen.hosting(), yemen.vendorSet());
  const auto result = confirmer.run(yemen.caseStudyConfig());
  EXPECT_TRUE(result.confirmed);
  EXPECT_GE(result.submittedBlocked, 4);  // any-pass-blocked semantics
}

TEST(Yemen2009Test, SingleRetestPassAtPeakHoursMissesEverything) {
  // Without the repeated retests, the experiment under-counts —
  // demonstrating WHY Challenge 2 forces repetition: a single pass that
  // happens to land during the afternoon license exhaustion observes no
  // blocking at all.
  int totalBlocked = 0;
  constexpr int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    Yemen2009 yemen(3000 + static_cast<std::uint64_t>(trial));
    // Shift the campaign so the (single) retest lands at the daily peak.
    yemen.world().clock().advanceHours(14);
    core::Confirmer confirmer(yemen.world(), yemen.hosting(),
                              yemen.vendorSet());
    auto config = yemen.caseStudyConfig();
    config.retestRuns = 1;
    totalBlocked += confirmer.run(config).submittedBlocked;
  }
  EXPECT_EQ(totalBlocked, 0);
}

TEST(Yemen2009Test, UpdateWithdrawalFreezesBlocking) {
  Yemen2009 yemen;
  auto& world = yemen.world();
  auto& vendor = yemen.websense();
  const auto proxyCat = vendor.scheme().byName("Proxy Avoidance")->id;

  // A site categorized before the withdrawal: blocked (whenever licensed).
  const auto before =
      yemen.hosting().createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(before.hostname, proxyCat);

  yemen.websenseWithdrawsSupport();  // [35]

  // A site categorized after: the master DB has it, the frozen box never
  // learns of it.
  const auto after =
      yemen.hosting().createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(after.hostname, proxyCat);

  auto* field = world.findVantage("field-yemennet-2009");
  simnet::Transport transport(world);
  int beforeBlocked = 0;
  int afterBlocked = 0;
  for (int hour = 0; hour < 48; ++hour) {
    if (transport.fetchUrl(*field, "http://" + before.hostname + "/")
            .response->statusCode != 200)
      ++beforeBlocked;
    if (transport.fetchUrl(*field, "http://" + after.hostname + "/")
            .response->statusCode != 200)
      ++afterBlocked;
    world.clock().advanceHours(1);
  }
  EXPECT_GT(beforeBlocked, 0);
  EXPECT_EQ(afterBlocked, 0);
}

TEST(Yemen2009Test, ConfirmationFailsAfterWithdrawal) {
  // Post-2009, the §4 methodology correctly reports Websense as no longer
  // (newly) censoring: submissions are accepted by the vendor but never
  // reach the frozen deployment.
  Yemen2009 yemen;
  yemen.websenseWithdrawsSupport();
  core::Confirmer confirmer(yemen.world(), yemen.hosting(), yemen.vendorSet());
  const auto result = confirmer.run(yemen.caseStudyConfig());
  EXPECT_FALSE(result.confirmed);
  EXPECT_EQ(result.submittedBlocked, 0);
}

TEST(Yemen2009Test, IdentificationStillSeesTheFrozenBox) {
  // The installation remains externally visible after the withdrawal — the
  // §3 pipeline keeps finding it even though it no longer receives updates.
  Yemen2009 yemen;
  yemen.websenseWithdrawsSupport();
  auto& world = yemen.world();
  const auto engine = urlf::fingerprint::Engine::withBuiltinSignatures();
  const auto matches =
      engine.probe(world, yemen.deployment().serviceIp(), 15871);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].product, filters::ProductKind::kWebsense);
}

}  // namespace
}  // namespace urlf::scenarios
