#include <gtest/gtest.h>

#include "geo/geodb.h"

namespace urlf::geo {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}
net::Ipv4Addr addr(const char* text) {
  return net::Ipv4Addr::parse(text).value();
}

// -------------------------------------------------------- GeoDatabase ----

TEST(GeoDatabaseTest, BasicLookup) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("20.0.0.0/8"), "SA");
  EXPECT_EQ(db.lookup(addr("10.1.2.3")).value(), "US");
  EXPECT_EQ(db.lookup(addr("20.1.2.3")).value(), "SA");
  EXPECT_FALSE(db.lookup(addr("30.1.2.3")));
}

TEST(GeoDatabaseTest, LongestPrefixWins) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("10.5.0.0/16"), "AE");
  EXPECT_EQ(db.lookup(addr("10.5.1.1")).value(), "AE");
  EXPECT_EQ(db.lookup(addr("10.6.1.1")).value(), "US");
}

TEST(GeoDatabaseTest, InsertionOrderIrrelevantForLongestMatch) {
  GeoDatabase db;
  db.add(prefix("10.5.0.0/16"), "AE");
  db.add(prefix("10.0.0.0/8"), "US");
  EXPECT_EQ(db.lookup(addr("10.5.1.1")).value(), "AE");
}

TEST(GeoDatabaseTest, ErrorModelIsDeterministicPerAddress) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("20.0.0.0/8"), "SA");
  db.setErrorModel(0.5, /*seed=*/99);
  const auto first = db.lookup(addr("10.1.2.3"));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(db.lookup(addr("10.1.2.3")), first);
}

TEST(GeoDatabaseTest, ErrorModelRateRoughlyHolds) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("20.0.0.0/8"), "SA");
  db.setErrorModel(0.2, /*seed=*/7);
  int wrong = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    const net::Ipv4Addr a{0x0A000000u + static_cast<std::uint32_t>(i)};
    if (db.lookup(a).value() != "US") ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / kProbes, 0.2, 0.05);
}

TEST(GeoDatabaseTest, TruthIgnoresErrorModel) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("20.0.0.0/8"), "SA");
  db.setErrorModel(1.0, /*seed=*/5);
  for (int i = 0; i < 50; ++i) {
    const net::Ipv4Addr a{0x0A000000u + static_cast<std::uint32_t>(i * 7)};
    EXPECT_EQ(db.lookupTruth(a).value(), "US");
    EXPECT_EQ(db.lookup(a).value(), "SA");  // only other entry available
  }
}

TEST(GeoDatabaseTest, HomogeneousDbCannotMislocate) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.setErrorModel(1.0, /*seed=*/5);
  EXPECT_EQ(db.lookup(addr("10.0.0.1")).value(), "US");
}

TEST(GeoDatabaseTest, ZeroErrorRateByDefault) {
  GeoDatabase db;
  db.add(prefix("10.0.0.0/8"), "US");
  db.add(prefix("20.0.0.0/8"), "SA");
  for (int i = 0; i < 200; ++i) {
    const net::Ipv4Addr a{0x0A000000u + static_cast<std::uint32_t>(i * 131)};
    EXPECT_EQ(db.lookup(a).value(), "US");
  }
}

// -------------------------------------------------------- AsnDatabase ----

TEST(AsnDatabaseTest, LookupReturnsFullRecord) {
  AsnDatabase db;
  db.add(prefix("10.0.0.0/8"), {5384, "EMIRATES-INTERNET", "Etisalat", "AE"});
  const auto record = db.lookup(addr("10.9.9.9"));
  ASSERT_TRUE(record);
  EXPECT_EQ(record->asn, 5384u);
  EXPECT_EQ(record->asName, "EMIRATES-INTERNET");
  EXPECT_EQ(record->description, "Etisalat");
  EXPECT_EQ(record->countryAlpha2, "AE");
}

TEST(AsnDatabaseTest, LongestPrefixWins) {
  AsnDatabase db;
  db.add(prefix("10.0.0.0/8"), {100, "BIG", "Big ISP", "US"});
  db.add(prefix("10.5.0.0/16"), {200, "SMALL", "Customer", "US"});
  EXPECT_EQ(db.lookup(addr("10.5.0.1"))->asn, 200u);
  EXPECT_EQ(db.lookup(addr("10.4.0.1"))->asn, 100u);
}

TEST(AsnDatabaseTest, BulkPreservesOrderAndGaps) {
  AsnDatabase db;
  db.add(prefix("10.0.0.0/8"), {100, "A", "A", "US"});
  const auto results =
      db.bulkLookup({addr("10.0.0.1"), addr("99.0.0.1"), addr("10.2.3.4")});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0]);
  EXPECT_FALSE(results[1]);
  EXPECT_TRUE(results[2]);
  EXPECT_EQ(results[0]->asn, 100u);
}

TEST(AsnDatabaseTest, EmptyDbFindsNothing) {
  AsnDatabase db;
  EXPECT_FALSE(db.lookup(addr("1.2.3.4")));
  EXPECT_EQ(db.entryCount(), 0u);
}

}  // namespace
}  // namespace urlf::geo
