#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/base64.h"
#include "util/clock.h"
#include "util/expected.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace urlf::util {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  EXPECT_NE(rng(), 0u);  // splitmix expansion guarantees non-degenerate state
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(RngTest, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformCoversFullRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, IndexThrowsOnEmpty) {
  Rng rng(23);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, SampleDistinctElements) {
  Rng rng(31);
  const std::vector<int> items{1, 2, 3, 4, 5, 6};
  const auto sample = rng.sample(items, 4);
  EXPECT_EQ(sample.size(), 4u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 4u);
}

TEST(RngTest, SampleTooLargeThrows) {
  Rng rng(37);
  EXPECT_THROW(rng.sample(std::vector<int>{1, 2}, 3), std::invalid_argument);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(41);
  Rng b(41);
  auto childA = a.fork();
  auto childB = b.fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(childA(), childB());
}

TEST(RngTest, PickReturnsElementFromVector) {
  Rng rng(43);
  const std::vector<std::string> items{"a", "b", "c"};
  for (int i = 0; i < 30; ++i) {
    const auto& picked = rng.pick(items);
    EXPECT_TRUE(picked == "a" || picked == "b" || picked == "c");
  }
}

/// Property: uniform(lo, hi) respects bounds for many (seed, range) combos.
class RngUniformProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(RngUniformProperty, BoundsHold) {
  const auto [seed, span] = GetParam();
  Rng rng(seed);
  const std::uint64_t lo = seed % 1000;
  const std::uint64_t hi = lo + span;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.uniform(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngUniformProperty,
    ::testing::Combine(::testing::Values(1u, 99u, 12345u, 424242u),
                       ::testing::Values(0u, 1u, 7u, 255u, 1u << 20)));

// -------------------------------------------------------------- Clock ----

TEST(ClockTest, EpochIsJanuary2012) {
  EXPECT_EQ(SimTime{}.date(), (CivilDate{2012, 1, 1}));
}

TEST(ClockTest, DayArithmetic) {
  const auto t = SimTime{} + daysToHours(31);
  EXPECT_EQ(t.date(), (CivilDate{2012, 2, 1}));
}

TEST(ClockTest, LeapYear2012HasFeb29) {
  const auto t = SimTime::fromDate({2012, 2, 29});
  EXPECT_EQ(t.date(), (CivilDate{2012, 2, 29}));
  EXPECT_EQ((t + 24).date(), (CivilDate{2012, 3, 1}));
}

TEST(ClockTest, MonthYearFormat) {
  EXPECT_EQ((CivilDate{2012, 9, 14}).monthYear(), "9/2012");
  EXPECT_EQ((CivilDate{2013, 4, 1}).monthYear(), "4/2013");
}

TEST(ClockTest, IsoFormatPadsMonthAndDay) {
  EXPECT_EQ((CivilDate{2013, 4, 8}).iso(), "2013-04-08");
  EXPECT_EQ((CivilDate{2013, 11, 25}).iso(), "2013-11-25");
}

TEST(ClockTest, FromDateRoundTrips) {
  const CivilDate dates[] = {{2012, 1, 1},  {2012, 12, 31}, {2013, 8, 5},
                             {2015, 2, 28}, {2016, 2, 29},  {2020, 7, 4}};
  for (const auto& d : dates) EXPECT_EQ(SimTime::fromDate(d).date(), d);
}

TEST(ClockTest, MidDayHoursTruncateToSameDate) {
  const auto base = SimTime::fromDate({2013, 3, 4});
  EXPECT_EQ((base + 23).date(), (CivilDate{2013, 3, 4}));
  EXPECT_EQ((base + 24).date(), (CivilDate{2013, 3, 5}));
}

TEST(ClockTest, AdvanceMonotonic) {
  SimClock clock;
  clock.advanceDays(3);
  EXPECT_EQ(clock.now().hours(), 72);
  clock.advanceHours(0);
  EXPECT_EQ(clock.now().hours(), 72);
  EXPECT_THROW(clock.advanceHours(-1), std::invalid_argument);
}

TEST(ClockTest, PreEpochTimesFloorToEarlierDay) {
  // -1 hour is 23:00 on 2011-12-31, not 2012-01-01.
  EXPECT_EQ(SimTime{-1}.date(), (CivilDate{2011, 12, 31}));
  EXPECT_EQ(SimTime{-24}.date(), (CivilDate{2011, 12, 31}));
  EXPECT_EQ(SimTime{-25}.date(), (CivilDate{2011, 12, 30}));
}

TEST(ClockTest, TimeDifference) {
  const SimTime a{100};
  const SimTime b{40};
  EXPECT_EQ(a - b, 60);
  EXPECT_EQ(b - a, -60);
}

/// Property: date() is consistent with day-by-day stepping across years.
TEST(ClockTest, SequentialDaysNeverRepeatOrSkip) {
  auto t = SimTime::fromDate({2012, 1, 1});
  CivilDate prev = t.date();
  for (int i = 0; i < 800; ++i) {
    t = t + 24;
    const CivilDate next = t.date();
    EXPECT_LT(prev, next);
    prev = next;
  }
  EXPECT_EQ(prev, (CivilDate{2014, 3, 11}));
}

// ------------------------------------------------------------ Strings ----

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(toLower("McAfee Web Gateway"), "mcafee web gateway");
  EXPECT_EQ(toUpper("ae"), "AE");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(StringsTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("Content-Type", "content-typ"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(StringsTest, CaseInsensitiveContains) {
  EXPECT_TRUE(icontains("Blue Coat ProxySG appliance", "proxysg"));
  EXPECT_FALSE(icontains("plain server", "proxysg"));
  EXPECT_TRUE(icontains("anything", ""));
  EXPECT_FALSE(icontains("ab", "abc"));
}

TEST(StringsTest, PrefixSuffix) {
  EXPECT_TRUE(startsWith("http://x", "http://"));
  EXPECT_FALSE(startsWith("ttp://x", "http://"));
  EXPECT_TRUE(endsWith("file.info", ".info"));
  EXPECT_FALSE(endsWith("info", ".info"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replaceAll("a b a b", "a", "x"), "x b x b");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("none", "zz", "x"), "none");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}

// ------------------------------------------------------------- Base64 ----

TEST(Base64Test, KnownVectors) {
  EXPECT_EQ(base64Encode(""), "");
  EXPECT_EQ(base64Encode("f"), "Zg==");
  EXPECT_EQ(base64Encode("fo"), "Zm8=");
  EXPECT_EQ(base64Encode("foo"), "Zm9v");
  EXPECT_EQ(base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeKnownVectors) {
  EXPECT_EQ(base64Decode("Zm9vYmFy").value(), "foobar");
  EXPECT_EQ(base64Decode("Zg==").value(), "f");
  EXPECT_EQ(base64Decode("").value(), "");
}

TEST(Base64Test, RejectsMalformed) {
  EXPECT_FALSE(base64Decode("abc"));       // not multiple of 4
  EXPECT_FALSE(base64Decode("a=bc"));      // data after padding
  EXPECT_FALSE(base64Decode("ab!c"));      // bad alphabet
  EXPECT_FALSE(base64Decode("====") && true);  // padding-only group
}

/// Property: decode(encode(x)) == x over pseudo-random binary strings.
class Base64RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Base64RoundTrip, RoundTrips) {
  Rng rng(GetParam());
  for (int len = 0; len < 64; ++len) {
    std::string data;
    for (int i = 0; i < len; ++i)
      data += static_cast<char>(rng.uniform(0, 255));
    const auto decoded = base64Decode(base64Encode(data));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Base64RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ----------------------------------------------------------- Expected ----

TEST(ExpectedTest, ValueState) {
  Expected<int> e(42);
  EXPECT_TRUE(e.ok());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.error(), "");
}

TEST(ExpectedTest, ErrorState) {
  auto e = Expected<int>::failure("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_THROW((void)e.value(), std::logic_error);
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  std::vector<int> visits(10000, 0);
  parallelFor(visits.size(), [&](std::size_t i) { visits[i] += 1; });
  EXPECT_TRUE(std::all_of(visits.begin(), visits.end(),
                          [](int v) { return v == 1; }));
}

TEST(ThreadPoolTest, ParallelForResultsMatchSerialLoop) {
  std::vector<std::uint64_t> parallel(5000), serial(5000);
  const auto body = [](std::size_t i) { return i * i + 17; };
  parallelFor(parallel.size(), [&](std::size_t i) { parallel[i] = body(i); });
  parallelFor(
      serial.size(), [&](std::size_t i) { serial[i] = body(i); },
      /*threadLimit=*/1);
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingle) {
  int calls = 0;
  parallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  EXPECT_THROW(
      parallelFor(100,
                  [](std::size_t i) {
                    if (i == 57) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  std::vector<int> sums(64, 0);
  parallelFor(sums.size(), [&](std::size_t i) {
    // A nested call from a worker must degrade to the serial loop.
    parallelFor(8, [&](std::size_t j) { sums[i] += static_cast<int>(j); });
  });
  EXPECT_TRUE(std::all_of(sums.begin(), sums.end(),
                          [](int s) { return s == 28; }));
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastOneWorker) {
  EXPECT_GE(ThreadPool::shared().threadCount(), 1u);
}

}  // namespace
}  // namespace urlf::util
