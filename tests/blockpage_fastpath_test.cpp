// The fetch→classify fast path: requiredLiteral prefilter extraction, the
// compiled pattern library vs the per-call reference classifier, and the
// batched/memoized measurement client vs the serial one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "measure/blockpage.h"
#include "measure/client.h"
#include "measure/pattern_library.h"
#include "scenarios/paper_world.h"
#include "util/regex.h"
#include "util/rng.h"

namespace urlf {
namespace {

using util::requiredLiteral;

TEST(RequiredLiteral, PlainLiteralIsItselfLowercased) {
  EXPECT_EQ(requiredLiteral("abc"), "abc");
  EXPECT_EQ(requiredLiteral("AbC-Def"), "abc-def");
}

TEST(RequiredLiteral, AlternationAndGroupsBail) {
  EXPECT_EQ(requiredLiteral("(a|b)c"), "");
  EXPECT_EQ(requiredLiteral("foo(bar)"), "");
  EXPECT_EQ(requiredLiteral("a|b"), "");
}

TEST(RequiredLiteral, ClassesDotsAndEscapedClassesBreakRuns) {
  EXPECT_EQ(requiredLiteral("[0-9.]+:8080/webadmin/deny"),
            ":8080/webadmin/deny");
  EXPECT_EQ(requiredLiteral("Via:.*McAfee Web Gateway"), "mcafee web gateway");
  EXPECT_EQ(requiredLiteral("\\d+foo"), "foo");
}

TEST(RequiredLiteral, QuantifiersDropOrEndRuns) {
  // Optional char cannot be required; it splits the literal.
  EXPECT_EQ(requiredLiteral("abx?cde"), "cde");
  // '+' requires one occurrence but ends the run after it.
  EXPECT_EQ(requiredLiteral("a+bc"), "bc");
  EXPECT_EQ(requiredLiteral("colou*r"), "colo");
}

TEST(RequiredLiteral, EscapedPunctuationIsLiteral) {
  EXPECT_EQ(requiredLiteral("www\\.cfauth\\.com/\\?cfru="),
            "www.cfauth.com/?cfru=");
}

TEST(RequiredLiteral, BuiltinPatternsYieldUsefulPrefilters) {
  // Every non-alternation builtin pattern must yield a literal — the library
  // prefilter is only worth its fold when that holds.
  for (const auto& pattern : measure::builtinBlockPagePatterns()) {
    const std::string literal = requiredLiteral(pattern.regex);
    if (pattern.name == "netsweeper-branding") {
      EXPECT_EQ(literal, "") << pattern.name;  // alternation — no literal
    } else {
      EXPECT_GE(literal.size(), 7u) << pattern.name;
    }
  }
}

// --- compiled library vs reference classifier ------------------------------

simnet::FetchResult resultWithBody(std::string body) {
  simnet::FetchResult result;
  result.response = http::Response::make(http::Status::kOk, std::move(body));
  return result;
}

simnet::FetchResult redirectResult(const std::string& location) {
  simnet::FetchResult result;
  auto hop = http::Response::make(http::Status::kFound);
  hop.headers.set("Location", location);
  result.redirectChain.push_back(std::move(hop));
  result.response = http::Response::make(http::Status::kOk, "<html/>");
  return result;
}

std::vector<simnet::FetchResult> classifyCorpus() {
  std::vector<simnet::FetchResult> corpus;
  corpus.push_back(resultWithBody("<html><body>plain page</body></html>"));
  corpus.push_back(
      resultWithBody("<title>McAfee Web Gateway - Notification</title>"));
  corpus.push_back(resultWithBody("<TITLE>WEBSENSE - Access denied</TITLE>"));
  corpus.push_back(resultWithBody("Netsweeper WebAdmin deny page"));
  corpus.push_back(
      redirectResult("http://www.cfauth.com/?cfru=aHR0cDovL3guY29tLw"));
  corpus.push_back(
      redirectResult("http://10.0.0.2:8080/webadmin/deny.php?dpid=4"));
  corpus.push_back(redirectResult(
      "http://10.0.0.8:15871/cgi-bin/blockpage.cgi?ws-session=123"));
  {  // SmartFilter Via header on an otherwise benign page
    simnet::FetchResult result = resultWithBody("<html>proxied</html>");
    result.response->headers.set("Via", "1.1 x (McAfee Web Gateway 7)");
    corpus.push_back(std::move(result));
  }
  {  // failed fetch, empty chain: classified as nothing by the guard
    simnet::FetchResult result;
    result.outcome = simnet::FetchOutcome::kTimeout;
    result.error = "timed out";
    corpus.push_back(std::move(result));
  }
  // Near misses: the literal occurs but the full pattern must not match.
  corpus.push_back(resultWithBody("the words mcafee web gateway in a body"));
  corpus.push_back(resultWithBody("<title>not blue coat here</title>x"));
  return corpus;
}

TEST(CompiledPatternLibrary, MatchesReferenceClassifierOnCorpus) {
  const auto& patterns = measure::builtinBlockPagePatterns();
  for (const auto& result : classifyCorpus()) {
    const auto reference =
        measure::classifyBlockPageReference(result, patterns);
    const auto compiled = measure::classifyBlockPage(result);
    const auto cached = measure::classifyBlockPage(result, patterns);
    ASSERT_EQ(reference.has_value(), compiled.has_value());
    ASSERT_EQ(reference.has_value(), cached.has_value());
    if (!reference) continue;
    EXPECT_EQ(reference->product, compiled->product);
    EXPECT_EQ(reference->patternName, compiled->patternName);
    EXPECT_EQ(reference->evidence, compiled->evidence);
    EXPECT_EQ(reference->patternName, cached->patternName);
    EXPECT_EQ(reference->evidence, cached->evidence);
  }
}

TEST(CompiledPatternLibrary, MatchesReferenceOnRandomizedTraces) {
  // Random noise around the vendor fragments: the prefilter must never
  // change the outcome, only skip provably impossible patterns.
  const auto& patterns = measure::builtinBlockPagePatterns();
  const std::vector<std::string> fragments{
      "McAfee Web Gateway",    "www.cfauth.com/?cfru=",
      "webadmin/deny",         "blockpage.cgi?ws-session=",
      "Netsweeper WebAdmin",   "<title>Websense</title>",
      "harmless filler text",  "X-Filter: Netsweeper",
  };
  util::Rng rng(424242);
  for (int i = 0; i < 200; ++i) {
    std::string body;
    const int parts = 1 + static_cast<int>(rng.uniform(0, 3));
    for (int p = 0; p < parts; ++p) {
      body += rng.pick(fragments);
      body += ' ';
      for (int f = 0; f < 10; ++f) body += static_cast<char>(rng.uniform(97, 122));
      body += ' ';
    }
    const auto result = resultWithBody(body);
    const auto reference =
        measure::classifyBlockPageReference(result, patterns);
    const auto compiled = measure::classifyBlockPage(result);
    ASSERT_EQ(reference.has_value(), compiled.has_value()) << body;
    if (reference) {
      EXPECT_EQ(reference->patternName, compiled->patternName) << body;
      EXPECT_EQ(reference->evidence, compiled->evidence) << body;
    }
  }
}

TEST(CompiledPatternLibrary, ClassifyTraceIsCaseInsensitive) {
  const auto& library = measure::CompiledPatternLibrary::builtin();
  const auto upper = library.classifyTrace(
      "LOCATION: HTTP://WWW.CFAUTH.COM/?CFRU=ABC\r\n");
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(upper->product, filters::ProductKind::kBlueCoat);
  EXPECT_FALSE(library.classifyTrace("nothing to see here").has_value());
}

// --- batched client vs serial client ---------------------------------------

std::vector<std::string> someGlobalUrls(const scenarios::PaperWorld& paper,
                                        std::size_t count) {
  std::vector<std::string> urls;
  for (const auto& entry : paper.globalList().entries) {
    urls.push_back(entry.url);
    if (urls.size() == count) break;
  }
  return urls;
}

void expectSameResults(const std::vector<measure::UrlTestResult>& a,
                       const std::vector<measure::UrlTestResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_EQ(a[i].verdict, b[i].verdict) << a[i].url;
    ASSERT_EQ(a[i].blockPage.has_value(), b[i].blockPage.has_value())
        << a[i].url;
    if (a[i].blockPage) {
      EXPECT_EQ(a[i].blockPage->product, b[i].blockPage->product);
      EXPECT_EQ(a[i].blockPage->patternName, b[i].blockPage->patternName);
    }
  }
}

TEST(BatchedClient, MatchesSerialClientAtEveryThreadCount) {
  scenarios::PaperWorld paper;
  scenarios::advanceClockTo(paper.world(), {2013, 4, 1});
  const auto* field = paper.world().findVantage("field-etisalat");
  const auto* lab = paper.world().findVantage("lab-toronto");
  ASSERT_NE(field, nullptr);
  ASSERT_NE(lab, nullptr);

  const auto urls = someGlobalUrls(paper, 12);
  ASSERT_FALSE(urls.empty());

  measure::Client client(paper.world(), *field, *lab);
  const auto serial = client.testList(urls);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0}}) {
    const auto batched = client.testListBatched(urls, threads);
    expectSameResults(serial, batched);
  }

  // Reference classify mode must agree as well.
  client.setClassifyMode(measure::ClassifyMode::kReference);
  expectSameResults(serial, client.testListBatched(urls, 2));
}

TEST(VerdictMemo, HitsOnRepeatsAndInvalidatesOnClockAdvance) {
  scenarios::PaperWorld paper;
  scenarios::advanceClockTo(paper.world(), {2013, 4, 1});
  const auto* field = paper.world().findVantage("field-etisalat");
  const auto* lab = paper.world().findVantage("lab-toronto");
  ASSERT_NE(field, nullptr);
  ASSERT_NE(lab, nullptr);

  const auto urls = someGlobalUrls(paper, 6);
  measure::Client client(paper.world(), *field, *lab);
  client.enableVerdictMemo(true);
  // Etisalat's Blue Coat + SmartFilter tandem rolls no dice per exchange.
  ASSERT_TRUE(client.verdictMemoActive());

  const auto first = client.testList(urls);
  EXPECT_EQ(client.verdictMemoHits(), 0u);
  const auto second = client.testList(urls);
  EXPECT_EQ(client.verdictMemoHits(), urls.size());
  expectSameResults(first, second);

  // Any clock movement moves the epoch: the memo must not serve stale
  // verdicts (update lags are measured against the clock).
  paper.world().clock().advanceHours(1);
  const auto third = client.testList(urls);
  EXPECT_EQ(client.verdictMemoHits(), urls.size());  // no new hits
  expectSameResults(first, third);
}

TEST(VerdictMemo, RefusesNondeterministicChains) {
  scenarios::PaperWorld paper;
  scenarios::advanceClockTo(paper.world(), {2013, 4, 1});
  const auto* field = paper.world().findVantage("field-yemennet");
  const auto* lab = paper.world().findVantage("lab-toronto");
  ASSERT_NE(field, nullptr);
  ASSERT_NE(lab, nullptr);

  // YemenNet's Netsweeper has offlineProbability > 0 (Challenge 2): every
  // repeat must re-roll, so the memo must refuse to activate.
  measure::Client client(paper.world(), *field, *lab);
  client.enableVerdictMemo(true);
  EXPECT_FALSE(client.verdictMemoActive());
}

}  // namespace
}  // namespace urlf
