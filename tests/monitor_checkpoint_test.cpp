// Checkpoint compaction and resume (DESIGN.md §4.7): a monitor checkpoint is
// one O(state) snapshot, resume continues the campaign with digests
// byte-identical to the unbroken run, and any corruption — truncation at any
// byte, a flipped bit anywhere — fails loudly with a one-line reason instead
// of silently resuming a diverged campaign.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "measure/journal.h"
#include "scenarios/monitor.h"

namespace urlf::scenarios {
namespace {

using measure::CampaignJournal;

MonitorOptions tinyWorld() {
  MonitorOptions options;
  options.streamHosts = 300;
  options.hostsPerShard = 64;
  options.ticks = 4;
  options.churn.rebrandRate = 0.08;
  options.churn.parkRate = 0.02;
  options.churn.dbMutationsPerTick = 4;
  return options;
}

std::string tempPath(const char* stem) {
  return ::testing::TempDir() + stem;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// -------------------------------------------------------- Round trip -----

TEST(MonitorCheckpoint, ResumeContinuesTheExactDigestChain) {
  const auto options = tinyWorld();
  const auto unbroken = runMonitor(options);
  ASSERT_EQ(unbroken.ticks.size(), 5u);

  // Crash after every possible tick; resume must reproduce the remaining
  // ticks' digests and land on the same chain digest.
  for (int crashAfter = 0; crashAfter <= options.ticks; ++crashAfter) {
    const auto path = tempPath("monitor_roundtrip.urlfj");
    auto session = MonitorSession::create(options);
    for (int t = 0; t <= crashAfter; ++t) session->runTick();
    session->writeCheckpoint(path);
    session.reset();  // the crash

    auto resumed = MonitorSession::resume(path);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    EXPECT_EQ((*resumed.value()).tick(), crashAfter);
    for (int t = crashAfter + 1; t <= options.ticks; ++t) {
      const auto report = (*resumed.value()).runTick();
      EXPECT_EQ(report.digestHex(), unbroken.ticks[t].digestHex())
          << "crash after tick " << crashAfter << ", resumed tick " << t;
    }
    EXPECT_EQ((*resumed.value()).chainDigest(), unbroken.chainDigest)
        << "crash after tick " << crashAfter;
    std::remove(path.c_str());
  }
}

TEST(MonitorCheckpoint, CheckpointsAreModeAgnostic) {
  // Checkpoint under the full reference pipeline, resume incrementally (and
  // vice versa): the chain must not notice.
  auto options = tinyWorld();
  options.ticks = 3;
  const auto unbroken = runMonitor(options);

  for (const auto writeMode : {MonitorMode::kFull, MonitorMode::kIncremental}) {
    const auto resumeMode = writeMode == MonitorMode::kFull
                                ? MonitorMode::kIncremental
                                : MonitorMode::kFull;
    auto writeOptions = options;
    writeOptions.mode = writeMode;
    const auto path = tempPath("monitor_modeswitch.urlfj");
    auto session = MonitorSession::create(writeOptions);
    session->runTick();
    session->runTick();
    session->writeCheckpoint(path);
    session.reset();

    auto resumed = MonitorSession::resume(path, resumeMode, 2);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    ASSERT_EQ((*resumed.value()).tick(), 1);  // ticks 0 and 1 ran pre-crash
    for (int t = 2; t <= options.ticks; ++t) (*resumed.value()).runTick();
    EXPECT_EQ((*resumed.value()).chainDigest(), unbroken.chainDigest)
        << toString(writeMode) << " -> " << toString(resumeMode);
    std::remove(path.c_str());
  }
}

TEST(MonitorCheckpoint, SnapshotSizeIsIndependentOfHistoryLength) {
  // The checkpoint is a compaction, not a log: more ticks, same size.
  auto options = tinyWorld();
  options.ticks = 1;
  const auto shortPath = tempPath("monitor_short.urlfj");
  (void)runMonitor(options, shortPath);
  options.ticks = 6;
  const auto longPath = tempPath("monitor_long.urlfj");
  (void)runMonitor(options, longPath);

  const auto shortSize = slurp(shortPath).size();
  const auto longSize = slurp(longPath).size();
  ASSERT_GT(shortSize, 0u);
  // Allow drift from churned verdict contents, but nothing O(ticks).
  EXPECT_LT(longSize, shortSize * 2) << shortSize << " vs " << longSize;
  std::remove(shortPath.c_str());
  std::remove(longPath.c_str());
}

// ------------------------------------------------------- Corruption ------

class MonitorCorruptionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto options = tinyWorld();
    options.ticks = 2;
    const auto path = tempPath("monitor_corruption.urlfj");
    (void)runMonitor(options, path);
    text_ = slurp(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text_.empty());
  }

  /// Resume from raw journal text; empty error string = success.
  std::string resumeError(const std::string& text) {
    auto journal = CampaignJournal::fromText(text);
    if (!journal.ok()) return journal.error();
    auto resumed = MonitorSession::resumeFromJournal(
        std::move(journal.value()), MonitorMode::kIncremental, 0);
    if (!resumed.ok()) return resumed.error();
    return "";
  }

  static bool oneLine(const std::string& message) {
    return !message.empty() &&
           message.find('\n') == std::string::npos;
  }

  std::string text_;
};

TEST_F(MonitorCorruptionFixture, IntactCheckpointResumes) {
  EXPECT_EQ(resumeError(text_), "");
}

TEST_F(MonitorCorruptionFixture, EveryTruncationFailsWithOneLine) {
  // Sample every record boundary, a byte stride across the whole file, and
  // the dense tail where the torn write actually lands.
  std::vector<std::size_t> offsets;
  for (const auto boundary : CampaignJournal::recordBoundaries(text_))
    offsets.push_back(boundary);
  for (std::size_t i = 0; i < text_.size(); i += 97) offsets.push_back(i);
  for (std::size_t i = text_.size() > 48 ? text_.size() - 48 : 0;
       i < text_.size(); ++i)
    offsets.push_back(i);

  for (const auto offset : offsets) {
    if (offset >= text_.size()) continue;
    const auto error = resumeError(text_.substr(0, offset));
    EXPECT_TRUE(oneLine(error)) << "truncation at byte " << offset
                                << " resumed (or failed unreadably): '"
                                << error << "'";
  }
}

TEST_F(MonitorCorruptionFixture, SampledBitFlipsFail) {
  for (std::size_t offset = 0; offset < text_.size();
       offset += 131) {
    for (const int bit : {0, 3, 7}) {
      std::string flipped = text_;
      flipped[offset] = static_cast<char>(flipped[offset] ^ (1 << bit));
      if (flipped == text_) continue;
      const auto error = resumeError(flipped);
      EXPECT_TRUE(oneLine(error))
          << "bit " << bit << " at byte " << offset << ": '" << error << "'";
    }
  }
}

TEST_F(MonitorCorruptionFixture, ForeignHeaderIsRejected) {
  report::Json header = report::Json::object();
  header["type"] = report::Json::string("campaign-config");
  header["version"] = report::Json::number(std::int64_t{1});
  auto journal = CampaignJournal::start("", header);
  auto resumed = MonitorSession::resumeFromJournal(
      std::move(journal), MonitorMode::kIncremental, 0);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.error().find("monitor-config"), std::string::npos);
}

TEST_F(MonitorCorruptionFixture, MissingFileFailsWithOneLine) {
  auto resumed = MonitorSession::resume(tempPath("does_not_exist.urlfj"));
  ASSERT_FALSE(resumed.ok());
  EXPECT_TRUE(oneLine(resumed.error()));
}

}  // namespace
}  // namespace urlf::scenarios
