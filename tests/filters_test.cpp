#include <gtest/gtest.h>

#include "filters/bluecoat.h"
#include "filters/category.h"
#include "filters/category_db.h"
#include "filters/netsweeper.h"
#include "filters/registry.h"
#include "filters/smartfilter.h"
#include "filters/vendor.h"
#include "filters/websense.h"
#include "http/html.h"
#include "simnet/hosting.h"
#include "simnet/transport.h"

namespace urlf::filters {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}
net::Url url(const char* text) { return net::Url::parse(text).value(); }

// ----------------------------------------------------------- Category ----

TEST(CategoryTest, NetsweeperSchemeHas66CategoriesAndCatno23IsPornography) {
  const auto scheme = netsweeperScheme();
  EXPECT_EQ(scheme.size(), 66u);
  EXPECT_EQ(scheme.byId(23)->name, "Pornography");
  // The five categories found blocked in YemenNet (§4.4) all exist.
  for (const char* name : {"Adult Image", "Phishing", "Pornography",
                           "Proxy Anonymizer", "Search Keywords"})
    EXPECT_TRUE(scheme.byName(name)) << name;
}

TEST(CategoryTest, SchemesHaveTheCaseStudyCategories) {
  EXPECT_TRUE(smartFilterScheme().byName("Anonymizers"));
  EXPECT_TRUE(smartFilterScheme().byName("Pornography"));
  EXPECT_TRUE(blueCoatScheme().byName("Proxy Avoidance"));
  EXPECT_TRUE(websenseScheme().byName("Proxy Avoidance"));
}

TEST(CategoryTest, ByNameIsCaseInsensitive) {
  EXPECT_EQ(smartFilterScheme().byName("anonymizers")->id,
            smartFilterScheme().byName("ANONYMIZERS")->id);
}

TEST(CategoryTest, UnknownLookups) {
  const auto scheme = smartFilterScheme();
  EXPECT_FALSE(scheme.byId(999));
  EXPECT_FALSE(scheme.byName("no-such"));
  EXPECT_EQ(scheme.nameOf(999), "category-999");
}

TEST(CategoryTest, SchemeIdsAreUnique) {
  for (const auto kind : allProducts()) {
    const auto scheme = schemeFor(kind);
    std::set<CategoryId> ids;
    for (const auto& category : scheme.categories())
      EXPECT_TRUE(ids.insert(category.id).second)
          << toString(kind) << " duplicate id " << category.id;
  }
}

TEST(CategoryTest, ProductMetadata) {
  EXPECT_EQ(toString(ProductKind::kNetsweeper), "Netsweeper");
  EXPECT_EQ(vendorHeadquarters(ProductKind::kNetsweeper), "Guelph, ON, Canada");
  EXPECT_EQ(vendorCompany(ProductKind::kSmartFilter), "McAfee");
  EXPECT_EQ(allProducts().size(), 4u);
}

// --------------------------------------------------- CategoryDatabase ----

TEST(CategoryDbTest, HostGranularityCoversAllPaths) {
  CategoryDatabase db;
  db.addHost("example.info", 1);
  EXPECT_EQ(db.categorize(url("http://example.info/")).count(1), 1u);
  EXPECT_EQ(db.categorize(url("http://example.info/benign.jpg")).count(1), 1u);
  EXPECT_EQ(db.categorize(url("http://other.info/")).size(), 0u);
}

TEST(CategoryDbTest, SubdomainFallsBackToRegistrableDomain) {
  CategoryDatabase db;
  db.addHost("example.info", 7);
  EXPECT_EQ(db.categorize(url("http://www.example.info/")).count(7), 1u);
}

TEST(CategoryDbTest, UrlGranularityIsExact) {
  CategoryDatabase db;
  db.addUrl(url("http://example.info/page"), 3);
  EXPECT_EQ(db.categorize(url("http://example.info/page")).count(3), 1u);
  EXPECT_TRUE(db.categorize(url("http://example.info/other")).empty());
}

TEST(CategoryDbTest, MultipleCategoriesUnion) {
  CategoryDatabase db;
  db.addHost("example.info", 1);
  db.addHost("example.info", 2);
  db.addUrl(url("http://example.info/"), 3);
  const auto categories = db.categorize(url("http://example.info/"));
  EXPECT_EQ(categories, (std::set<CategoryId>{1, 2, 3}));
}

TEST(CategoryDbTest, RemoveHost) {
  CategoryDatabase db;
  db.addHost("example.info", 1);
  db.removeHost("example.info");
  EXPECT_FALSE(db.isCategorized(url("http://example.info/")));
}

TEST(CategoryDbTest, HostLookupIsCaseInsensitive) {
  CategoryDatabase db;
  db.addHost("Example.INFO", 1);
  EXPECT_EQ(db.hostCategories("example.info").count(1), 1u);
}

TEST(CategoryDbTest, EntryCount) {
  CategoryDatabase db;
  db.addHost("a.com", 1);
  db.addHost("b.com", 1);
  db.addUrl(url("http://a.com/x"), 2);
  EXPECT_EQ(db.entryCount(), 3u);
}

TEST(CategoryDbTest, AsOfHonoursEntryTimes) {
  CategoryDatabase db;
  db.addHost("old.com", 1, util::SimTime{100});
  db.addHost("new.com", 1, util::SimTime{500});
  db.addUrl(url("http://old.com/x"), 2, util::SimTime{300});

  EXPECT_EQ(db.categorizeAsOf(url("http://old.com/"), util::SimTime{99}).size(),
            0u);
  EXPECT_EQ(
      db.categorizeAsOf(url("http://old.com/"), util::SimTime{100}).count(1),
      1u);
  EXPECT_EQ(db.categorizeAsOf(url("http://old.com/x"), util::SimTime{200}),
            (std::set<CategoryId>{1}));
  EXPECT_EQ(db.categorizeAsOf(url("http://old.com/x"), util::SimTime{300}),
            (std::set<CategoryId>{1, 2}));
  EXPECT_TRUE(
      db.categorizeAsOf(url("http://new.com/"), util::SimTime{499}).empty());
  // The untimed lookup sees everything.
  EXPECT_EQ(db.categorize(url("http://new.com/")).count(1), 1u);
}

TEST(CategoryDbTest, ReAddingKeepsEarliestTime) {
  CategoryDatabase db;
  db.addHost("x.com", 1, util::SimTime{200});
  db.addHost("x.com", 1, util::SimTime{900});  // later duplicate
  EXPECT_EQ(db.categorizeAsOf(url("http://x.com/"), util::SimTime{250}).count(1),
            1u);
}

// -------------------------------------------------------------- World ----

/// Fixture with a world, an ISP with a field vantage, an origin hosting
/// provider, and helpers to deploy any product.
class FiltersFixture : public ::testing::Test {
 protected:
  FiltersFixture() : world(99) {
    world.createAs(100, "ISP-AS", "Test ISP", "AE", {prefix("10.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Hosting", "US", {prefix("20.0.0.0/16")});
    world.createAs(300, "VENDOR-AS", "Vendor infra", "US",
                   {prefix("30.0.0.0/16")});
    isp = &world.createIsp("Test ISP", "AE", {100});
    field = &world.createVantage("field", "AE", isp);
    lab = &world.createVantage("lab", "CA", nullptr);
    hosting = std::make_unique<simnet::HostingProvider>(world, 200);
  }

  /// Fetch from the field vantage, following redirects.
  simnet::FetchResult fieldFetch(const std::string& urlText) {
    simnet::Transport transport(world);
    return transport.fetchUrl(*field, urlText);
  }
  /// Fetch from the field vantage without following redirects.
  simnet::FetchResult fieldFetchRaw(const std::string& urlText) {
    simnet::Transport transport(world);
    return transport.fetchUrl(*field, urlText, {.followRedirects = false});
  }

  simnet::World world;
  simnet::Isp* isp = nullptr;
  simnet::VantagePoint* field = nullptr;
  simnet::VantagePoint* lab = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
};

// -------------------------------------------------------------- Vendor ----

TEST_F(FiltersFixture, SubmissionLifecycle) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  const auto domain = hosting->createFreshDomain(
      simnet::ContentProfile::kGlypeProxy);
  const auto anonymizers = vendor.scheme().byName("Anonymizers")->id;

  const int ticket = vendor.submitUrl(url(("http://" + domain.hostname + "/")
                                              .c_str()),
                                      anonymizers, "tester@example.org");
  EXPECT_EQ(ticket, 1);
  ASSERT_EQ(vendor.submissions().size(), 1u);
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kPending);
  EXPECT_FALSE(vendor.masterDb().isCategorized(
      url(("http://" + domain.hostname + "/").c_str())));

  // Not yet reviewed after 2 days.
  vendor.processUntil(world.now() + util::daysToHours(2));
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kPending);

  // Reviewed within the 3-5 day window.
  vendor.processUntil(world.now() + util::daysToHours(5));
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kAccepted);
  EXPECT_EQ(vendor.masterDb()
                .categorize(url(("http://" + domain.hostname + "/").c_str()))
                .count(anonymizers),
            1u);
}

TEST_F(FiltersFixture, SubmissionVerificationRejectsMismatchedContent) {
  // A benign site submitted as "Pornography" does not classify -> rejected.
  Vendor vendor(ProductKind::kSmartFilter, world);
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  vendor.submitUrl(url(("http://" + domain.hostname + "/").c_str()),
                   vendor.scheme().byName("Pornography")->id, "t@example.org");
  vendor.processUntil(world.now() + util::daysToHours(6));
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kRejected);
  EXPECT_FALSE(vendor.masterDb().isCategorized(
      url(("http://" + domain.hostname + "/").c_str())));
}

TEST_F(FiltersFixture, ReviewerOverridesWrongSuggestedCategory) {
  // A proxy site submitted as "Pornography": the reviewer's classifier sees
  // a proxy and files it under Anonymizers instead.
  Vendor vendor(ProductKind::kSmartFilter, world);
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.submitUrl(url(("http://" + domain.hostname + "/").c_str()),
                   vendor.scheme().byName("Pornography")->id, "t@example.org");
  vendor.processUntil(world.now() + util::daysToHours(6));
  ASSERT_EQ(vendor.submissions()[0].state, Submission::State::kAccepted);
  const auto categories = vendor.masterDb().categorize(
      url(("http://" + domain.hostname + "/").c_str()));
  EXPECT_EQ(categories.count(vendor.scheme().byName("Anonymizers")->id), 1u);
  EXPECT_EQ(categories.count(vendor.scheme().byName("Pornography")->id), 0u);
}

TEST_F(FiltersFixture, DisregardedSubmitterIsRejected) {
  Vendor vendor(ProductKind::kNetsweeper, world);
  vendor.disregardSubmitter("suspicious@example.org");
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.submitUrl(url(("http://" + domain.hostname + "/").c_str()),
                   vendor.scheme().byName("Proxy Anonymizer")->id,
                   "suspicious@example.org");
  vendor.processUntil(world.now() + util::daysToHours(6));
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kRejected);
  EXPECT_EQ(vendor.submissions()[0].note, "submitter disregarded");
}

TEST_F(FiltersFixture, DisregardedHostingAsnIsRejected) {
  Vendor vendor(ProductKind::kNetsweeper, world);
  vendor.disregardHostingAsn(200);  // our hosting provider's AS
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.submitUrl(url(("http://" + domain.hostname + "/").c_str()),
                   vendor.scheme().byName("Proxy Anonymizer")->id,
                   "fresh-identity@example.org");
  vendor.processUntil(world.now() + util::daysToHours(6));
  EXPECT_EQ(vendor.submissions()[0].state, Submission::State::kRejected);
  EXPECT_EQ(vendor.submissions()[0].note, "hosting provider disregarded");
}

TEST_F(FiltersFixture, QueueCategorizationEventuallyCategorizes) {
  VendorConfig config;
  config.queueLatencyHours = 48;
  config.queueCategorizeProbability = 1.0;
  Vendor vendor(ProductKind::kNetsweeper, world, config);
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  const auto target = url(("http://" + domain.hostname + "/").c_str());

  vendor.queueForCategorization(target, world.now());
  EXPECT_EQ(vendor.pendingQueueSize(), 1u);
  // Duplicate queueing of the same host is ignored.
  vendor.queueForCategorization(target, world.now());
  EXPECT_EQ(vendor.pendingQueueSize(), 1u);

  vendor.processUntil(world.now() + 47);
  EXPECT_FALSE(vendor.masterDb().isCategorized(target));
  vendor.processUntil(world.now() + 49);
  EXPECT_TRUE(vendor.masterDb().isCategorized(target));
  EXPECT_EQ(vendor.pendingQueueSize(), 0u);
}

TEST_F(FiltersFixture, ClassifyContentMarkers) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  EXPECT_EQ(vendor.classifyContent("... powered by Glype ..."),
            vendor.scheme().byName("Anonymizers")->id);
  EXPECT_EQ(vendor.classifyContent("<img alt=\"adult content\">"),
            vendor.scheme().byName("Pornography")->id);
  EXPECT_FALSE(vendor.classifyContent("nothing interesting"));
}

// -------------------------------------------------- SmartFilter block ----

TEST_F(FiltersFixture, SmartFilterBlocksCategorizedHostWithSignature) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.blockedCategories = {vendor.scheme().byName("Pornography")->id};
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Test SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(domain.hostname,
                            vendor.scheme().byName("Pornography")->id);

  const auto result = fieldFetch("http://" + domain.hostname + "/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 403);
  EXPECT_TRUE(result.response->headers.anyValueContains("McAfee Web Gateway"));
  EXPECT_NE(http::extractTitle(result.response->body)
                .find("McAfee Web Gateway"),
            std::string::npos);
  EXPECT_EQ(deployment.requestsBlocked(), 1u);

  // Host granularity (§4.6): the benign file on the same host is blocked too.
  const auto benign = fieldFetch("http://" + domain.hostname + "/benign.jpg");
  EXPECT_EQ(benign.response->statusCode, 403);
}

TEST_F(FiltersFixture, SmartFilterStripBrandingRemovesSignature) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.blockedCategories = {1};
  policy.stripBranding = true;
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Stripped SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(domain.hostname, 1);

  const auto result = fieldFetch("http://" + domain.hostname + "/");
  EXPECT_EQ(result.response->statusCode, 403);
  EXPECT_FALSE(result.response->headers.anyValueContains("McAfee Web Gateway"));
  EXPECT_EQ(result.response->body.find("McAfee"), std::string::npos);
}

TEST_F(FiltersFixture, UncategorizedTrafficPasses) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.blockedCategories = {1, 2};
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Test SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  const auto result = fieldFetch("http://" + domain.hostname + "/");
  EXPECT_EQ(result.response->statusCode, 200);
  EXPECT_EQ(deployment.requestsBlocked(), 0u);
  EXPECT_EQ(deployment.requestsSeen(), 1u);
}

TEST_F(FiltersFixture, CategorizedButUnblockedCategoryPasses) {
  // Challenge 1 (§4.3): Saudi Arabia categorizes proxies but does not block
  // the category.
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.blockedCategories = {vendor.scheme().byName("Pornography")->id};
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Saudi-style SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(domain.hostname,
                            vendor.scheme().byName("Anonymizers")->id);
  const auto result = fieldFetch("http://" + domain.hostname + "/");
  EXPECT_EQ(result.response->statusCode, 200);
}

TEST_F(FiltersFixture, SmartFilterExternalSurfaces) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Test SmartFilter", vendor, FilterPolicy{});
  deployment.installExternalSurfaces(world, 100);
  EXPECT_NE(world.externalEndpointAt(deployment.serviceIp(), 4711), nullptr);
  EXPECT_NE(world.externalEndpointAt(deployment.serviceIp(), 80), nullptr);
}

TEST_F(FiltersFixture, HiddenDeploymentHasNoExternalSurfaces) {
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.externallyVisible = false;
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>(
      "Hidden SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  EXPECT_EQ(world.externalEndpointAt(deployment.serviceIp(), 4711), nullptr);
  EXPECT_EQ(world.externalEndpointAt(deployment.serviceIp(), 80), nullptr);
  // Still bound internally, just not visible to scanners.
  EXPECT_NE(world.endpointAt(deployment.serviceIp(), 4711), nullptr);
}

// ----------------------------------------------------- Blue Coat ----------

TEST_F(FiltersFixture, BlueCoatBlockRedirectsToCfauth) {
  Vendor vendor(ProductKind::kBlueCoat, world);
  vendor.installInfrastructure(300);
  FilterPolicy policy;
  policy.blockedCategories = {vendor.scheme().byName("Proxy Avoidance")->id};
  auto& deployment = world.makeMiddlebox<BlueCoatProxySG>("Test ProxySG",
                                                          vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(domain.hostname,
                            vendor.scheme().byName("Proxy Avoidance")->id);

  const auto raw = fieldFetchRaw("http://" + domain.hostname + "/");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.response->statusCode, 302);
  const auto location = raw.response->location();
  ASSERT_TRUE(location);
  EXPECT_NE(location->find("www.cfauth.com"), std::string::npos);
  EXPECT_NE(location->find("cfru="), std::string::npos);

  // Following the redirect lands on the vendor's hosted block service.
  const auto followed = fieldFetch("http://" + domain.hostname + "/");
  ASSERT_TRUE(followed.ok());
  EXPECT_NE(http::extractTitle(followed.response->body).find("Blue Coat"),
            std::string::npos);
}

TEST_F(FiltersFixture, BlueCoatProxyAnnotatesAllowedTraffic) {
  Vendor vendor(ProductKind::kBlueCoat, world);
  auto& deployment = world.makeMiddlebox<BlueCoatProxySG>("Test ProxySG",
                                                          vendor,
                                                          FilterPolicy{});
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kBenign);
  const auto result = fieldFetch("http://" + domain.hostname + "/");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.response->headers.contains("Via"));
  EXPECT_TRUE(result.response->headers.contains("X-Cache"));
}

TEST_F(FiltersFixture, TandemEngineOverridesOwnDatabase) {
  // Challenge 3 (§4.5): ProxySG with SmartFilter as the engine. Blue Coat
  // categorizations have no effect; SmartFilter categorizations block.
  Vendor blueCoat(ProductKind::kBlueCoat, world);
  blueCoat.installInfrastructure(300);
  Vendor smartFilter(ProductKind::kSmartFilter, world);

  FilterPolicy sfPolicy;
  sfPolicy.blockedCategories = {
      smartFilter.scheme().byName("Anonymizers")->id};
  auto& engine = world.makeMiddlebox<SmartFilterDeployment>("Engine SF",
                                                            smartFilter,
                                                            sfPolicy);
  engine.installExternalSurfaces(world, 100);

  FilterPolicy bcPolicy;
  bcPolicy.blockedCategories = {
      blueCoat.scheme().byName("Proxy Avoidance")->id};
  auto& proxy = world.makeMiddlebox<BlueCoatProxySG>("Tandem ProxySG",
                                                     blueCoat, bcPolicy);
  proxy.installExternalSurfaces(world, 100);
  proxy.setFilteringEngine(engine);
  isp->attachMiddlebox(proxy);

  const auto bcOnly =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  blueCoat.masterDb().addHost(bcOnly.hostname,
                              blueCoat.scheme().byName("Proxy Avoidance")->id);
  const auto sfOnly =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  smartFilter.masterDb().addHost(
      sfOnly.hostname, smartFilter.scheme().byName("Anonymizers")->id);

  // Blue Coat's own DB is ignored in tandem mode.
  EXPECT_EQ(fieldFetch("http://" + bcOnly.hostname + "/").response->statusCode,
            200);
  // The engine's DB governs, and the block page is SmartFilter's.
  const auto blocked = fieldFetch("http://" + sfOnly.hostname + "/");
  EXPECT_EQ(blocked.response->statusCode, 403);
  EXPECT_TRUE(blocked.response->headers.anyValueContains("McAfee Web Gateway"));
}

// ----------------------------------------------------- Netsweeper ---------

class NetsweeperFixture : public FiltersFixture {
 protected:
  NetsweeperFixture() : vendor(ProductKind::kNetsweeper, world) {
    vendor.installInfrastructure(300);
    FilterPolicy policy;
    policy.blockedCategories = {23, 43};  // Pornography, Proxy Anonymizer
    policy.queueAccessedUrls = true;
    deployment = &world.makeMiddlebox<NetsweeperDeployment>("Test Netsweeper",
                                                            vendor, policy);
    deployment->installExternalSurfaces(world, 100);
    isp->attachMiddlebox(*deployment);
  }

  Vendor vendor;
  NetsweeperDeployment* deployment = nullptr;
};

TEST_F(NetsweeperFixture, BlockRedirectsToWebadminDeny) {
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(domain.hostname, 43);

  const auto raw = fieldFetchRaw("http://" + domain.hostname + "/");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.response->statusCode, 302);
  const auto location = std::string(raw.response->location().value());
  EXPECT_NE(location.find(":8080/webadmin/deny"), std::string::npos);
  EXPECT_NE(location.find("dpruri="), std::string::npos);

  // The deny page itself is served from the box and reachable in-country.
  const auto followed = fieldFetch("http://" + domain.hostname + "/");
  ASSERT_TRUE(followed.ok());
  EXPECT_EQ(followed.response->statusCode, 403);
  EXPECT_NE(followed.response->body.find("Web Page Blocked"),
            std::string::npos);
  EXPECT_TRUE(followed.response->headers.anyValueContains("Netsweeper"));
}

TEST_F(NetsweeperFixture, DenyPageEchoesBlockedUrl) {
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(domain.hostname, 43);
  const auto followed = fieldFetch("http://" + domain.hostname + "/");
  EXPECT_NE(followed.response->body.find(domain.hostname), std::string::npos);
}

TEST_F(NetsweeperFixture, AccessQueuesUncategorizedUrls) {
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  EXPECT_EQ(vendor.pendingQueueSize(), 0u);
  (void)fieldFetch("http://" + domain.hostname + "/");
  EXPECT_EQ(vendor.pendingQueueSize(), 1u);
}

TEST_F(NetsweeperFixture, WebadminConsoleSignature) {
  simnet::Transport transport(world);
  const auto console = transport.fetchUrl(
      *lab, "http://" + deployment->serviceIp().toString() + ":8080/webadmin/");
  ASSERT_TRUE(console.ok());
  EXPECT_NE(http::extractTitle(console.response->body).find("Netsweeper"),
            std::string::npos);

  // "/" redirects into /webadmin/.
  const auto root = transport.fetchUrl(
      *lab, "http://" + deployment->serviceIp().toString() + ":8080/",
      {.followRedirects = false});
  EXPECT_EQ(root.response->statusCode, 302);
  EXPECT_EQ(root.response->location().value(), "/webadmin/");
}

TEST_F(NetsweeperFixture, CategoryProbePathParser) {
  EXPECT_EQ(NetsweeperDeployment::parseCategoryProbePath("/category/catno/23"),
            23);
  EXPECT_EQ(NetsweeperDeployment::parseCategoryProbePath("/category/catno/1"),
            1);
  EXPECT_FALSE(NetsweeperDeployment::parseCategoryProbePath("/category/catno/"));
  EXPECT_FALSE(NetsweeperDeployment::parseCategoryProbePath("/other"));
  EXPECT_FALSE(
      NetsweeperDeployment::parseCategoryProbePath("/category/catno/xx"));
}

TEST_F(NetsweeperFixture, DenyPageTestsBlockedVsUnblockedCategory) {
  // Blocked category -> deny page; unblocked -> vendor origin answers.
  const auto blocked =
      fieldFetch("http://denypagetests.netsweeper.com/category/catno/23");
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked.response->statusCode, 403);

  const auto open =
      fieldFetch("http://denypagetests.netsweeper.com/category/catno/16");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.response->statusCode, 200);
  EXPECT_NE(open.response->body.find("not being filtered"), std::string::npos);
}

TEST_F(NetsweeperFixture, SyncCoverageExcludesSomeHosts) {
  deployment->policy().syncCoverage = 0.5;
  deployment->policy().syncSalt = 1;
  int included = 0;
  constexpr int kHosts = 200;
  for (int i = 0; i < kHosts; ++i) {
    const std::string host = "host" + std::to_string(i) + ".example";
    vendor.masterDb().addHost(host, 43);
    const auto categories = deployment->effectiveCategories(
        url(("http://" + host + "/").c_str()), world.now());
    if (categories.count(43) == 1) ++included;
  }
  EXPECT_NEAR(static_cast<double>(included) / kHosts, 0.5, 0.12);
}

TEST_F(NetsweeperFixture, UpdateLagDelaysEnforcement) {
  // §2.1: products have a subscription/update component. A deployment with
  // a 48h update lag blocks a newly categorized site only 48h later.
  deployment->policy().updateLagHours = 48;
  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(domain.hostname, 43, world.now());

  EXPECT_EQ(fieldFetch("http://" + domain.hostname + "/").response->statusCode,
            200);  // vendor knows, the box does not yet
  world.clock().advanceHours(47);
  EXPECT_EQ(fieldFetch("http://" + domain.hostname + "/").response->statusCode,
            200);
  world.clock().advanceHours(1);
  EXPECT_EQ(fieldFetch("http://" + domain.hostname + "/").response->statusCode,
            403);  // update arrived
}

TEST_F(NetsweeperFixture, FreezeUpdatesIgnoresLaterAdditions) {
  const auto before =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(before.hostname, 43);
  deployment->freezeUpdates();
  const auto after =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(after.hostname, 43);

  EXPECT_EQ(fieldFetch("http://" + before.hostname + "/").response->statusCode,
            403);
  EXPECT_EQ(fieldFetch("http://" + after.hostname + "/").response->statusCode,
            200);
}

// ------------------------------------------------------- Websense ---------

TEST_F(FiltersFixture, WebsenseBlockRedirectsToPort15871) {
  Vendor vendor(ProductKind::kWebsense, world);
  FilterPolicy policy;
  policy.blockedCategories = {vendor.scheme().byName("Adult Content")->id};
  auto& deployment = world.makeMiddlebox<WebsenseDeployment>("Test Websense",
                                                             vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(domain.hostname,
                            vendor.scheme().byName("Adult Content")->id);

  const auto raw = fieldFetchRaw("http://" + domain.hostname + "/");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw.response->statusCode, 302);
  const auto location = std::string(raw.response->location().value());
  EXPECT_NE(location.find(":15871/cgi-bin/blockpage.cgi"), std::string::npos);
  EXPECT_NE(location.find("ws-session="), std::string::npos);

  const auto followed = fieldFetch("http://" + domain.hostname + "/");
  ASSERT_TRUE(followed.ok());
  EXPECT_NE(http::extractTitle(followed.response->body).find("Websense"),
            std::string::npos);
}

TEST_F(FiltersFixture, WebsenseLicenseExhaustionDisablesFiltering) {
  // §4.4: "when the number of users exceeded the number of licenses no
  // content would be filtered".
  Vendor vendor(ProductKind::kWebsense, world);
  FilterPolicy policy;
  policy.blockedCategories = {1};
  auto& deployment = world.makeMiddlebox<WebsenseDeployment>("Overloaded",
                                                             vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);
  // Licenses always exceeded.
  deployment.setLicenseModel({.licenses = 10,
                              .baseUsers = 1000,
                              .peakExtraUsers = 0,
                              .jitter = 0});

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(domain.hostname, 1);
  EXPECT_EQ(fieldFetch("http://" + domain.hostname + "/").response->statusCode,
            200);

  // Plenty of licenses: filtering is active again.
  deployment.setLicenseModel({.licenses = 100000,
                              .baseUsers = 10,
                              .peakExtraUsers = 0,
                              .jitter = 0});
  EXPECT_NE(fieldFetch("http://" + domain.hostname + "/").response->statusCode,
            200);
}

TEST_F(FiltersFixture, WebsenseDiurnalLoadPeaksInAfternoon) {
  Vendor vendor(ProductKind::kWebsense, world);
  auto& deployment = world.makeMiddlebox<WebsenseDeployment>("Diurnal", vendor,
                                                             FilterPolicy{});
  deployment.setLicenseModel({.licenses = 1000,
                              .baseUsers = 500,
                              .peakExtraUsers = 600,
                              .jitter = 0});
  util::Rng rng(1);
  const int night = deployment.activeUsers(util::SimTime{3}, rng);
  const int afternoon = deployment.activeUsers(util::SimTime{15}, rng);
  EXPECT_GT(afternoon, night);
}

TEST_F(FiltersFixture, OfflineProbabilityBypassesSomeRequests) {
  // Challenge 2: a deployment that is offline ~half the time blocks only
  // about half of the requests for a blocked site.
  Vendor vendor(ProductKind::kSmartFilter, world);
  FilterPolicy policy;
  policy.blockedCategories = {1};
  policy.offlineProbability = 0.5;
  auto& deployment = world.makeMiddlebox<SmartFilterDeployment>("Flaky",
                                                                vendor, policy);
  deployment.installExternalSurfaces(world, 100);
  isp->attachMiddlebox(deployment);

  const auto domain =
      hosting->createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(domain.hostname, 1);

  int blocked = 0;
  constexpr int kRuns = 200;
  for (int i = 0; i < kRuns; ++i)
    if (fieldFetch("http://" + domain.hostname + "/").response->statusCode ==
        403)
      ++blocked;
  EXPECT_GT(blocked, kRuns / 4);
  EXPECT_LT(blocked, 3 * kRuns / 4);
}

// ----------------------------------------------------------- Registry ----

TEST_F(FiltersFixture, MakeDeploymentBuildsRightSubclass) {
  Vendor blueCoat(ProductKind::kBlueCoat, world);
  Vendor netsweeper(ProductKind::kNetsweeper, world);
  auto& bc = makeDeployment(world, ProductKind::kBlueCoat, "bc", blueCoat, {});
  auto& ns =
      makeDeployment(world, ProductKind::kNetsweeper, "ns", netsweeper, {});
  EXPECT_NE(dynamic_cast<BlueCoatProxySG*>(&bc), nullptr);
  EXPECT_NE(dynamic_cast<NetsweeperDeployment*>(&ns), nullptr);
  EXPECT_EQ(bc.kind(), ProductKind::kBlueCoat);
  EXPECT_EQ(ns.kind(), ProductKind::kNetsweeper);
}

}  // namespace
}  // namespace urlf::filters
