// Property suite for the §4.8 mechanism classifier (DESIGN.md §4.8).
//
// Contracts under test:
//  * classifyList is byte-identical serial vs pooled and across thread
//    counts (evidence collection is serial; derivation is pure).
//  * Zero-fault worlds never yield kInconclusive — every host classifies
//    to its ground-truth mechanism.
//  * Fault-only worlds (no middlebox of any kind) never yield a censorship
//    verdict at trial budget >= 3.
//  * MechanismMode::kReference agrees with the evidence path on fault-free
//    worlds (the repo's reference-twin convention).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "measure/mechanism.h"
#include "simnet/fault.h"
#include "simnet/origin_server.h"
#include "simnet/packet_filter.h"
#include "simnet/world.h"

namespace {

using namespace urlf;
using measure::Mechanism;

struct GroundTruthHost {
  std::string url;
  Mechanism truth = Mechanism::kNone;
};

struct MechanismWorld {
  std::unique_ptr<simnet::World> world;
  std::vector<GroundTruthHost> hosts;
  const simnet::VantagePoint* field = nullptr;
  const simnet::VantagePoint* lab = nullptr;

  std::vector<std::string> urls() const {
    std::vector<std::string> out;
    for (const auto& host : hosts) out.push_back(host.url);
    return out;
  }
};

/// One ISP with all four packet-level mechanisms attached (unless
/// `attachFilters` is false — the fault-only configuration) and two hosts
/// per ground-truth class.
MechanismWorld buildWorld(std::uint64_t seed, double faultRate,
                          bool attachFilters) {
  MechanismWorld out;
  out.world = std::make_unique<simnet::World>(seed);
  auto& world = *out.world;
  if (faultRate > 0.0)
    world.setFaultPlan(simnet::FaultPlan(
        seed ^ 0xFA017FA017ULL, simnet::FaultRates::uniform(faultRate)));

  world.createAs(64500, "TESTNET", "Testland Telecom", "TL",
                 {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24}, 16}});
  auto& isp = world.createIsp("Testland Telecom", "TL", {64500});
  out.field = &world.createVantage("field-testland", "TL", &isp);
  out.lab = &world.createVantage("lab-control", "CA", nullptr);

  const auto addSite = [&](const std::string& host, std::uint16_t port) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    page.body = "<h1>" + host + "</h1><p>benign content</p>";
    page.contentLabel = "benign";
    server.setPage("/", std::move(page));
    const auto ip = world.allocateAddress(64500);
    world.bind(ip, port, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  };

  auto& poisoner = world.makePacketFilter<simnet::DnsPoisoner>(
      "tl-dns-poisoner", simnet::DnsTamper::Kind::kNxdomain);
  std::vector<std::string> rstKeywords, sniHosts, nullHosts;

  for (int i = 0; i < 2; ++i) {
    const std::string suffix = std::to_string(i) + ".example";
    const Mechanism censored[] = {
        Mechanism::kDnsPoisoning, Mechanism::kTcpInjection,
        Mechanism::kSniFiltering, Mechanism::kNullRouting, Mechanism::kNone};
    for (const auto truth : censored) {
      std::string host;
      switch (truth) {
        case Mechanism::kDnsPoisoning:
          host = "dns" + suffix;
          addSite(host, 80);
          if (attachFilters) poisoner.poisonZone(host);
          out.hosts.push_back({"http://" + host + "/", truth});
          break;
        case Mechanism::kTcpInjection:
          host = "rst" + suffix;
          addSite(host, 80);
          rstKeywords.push_back(host);
          out.hosts.push_back({"http://" + host + "/", truth});
          break;
        case Mechanism::kSniFiltering:
          host = "sni" + suffix;
          addSite(host, 443);
          sniHosts.push_back(host);
          out.hosts.push_back({"https://" + host + "/", truth});
          break;
        case Mechanism::kNullRouting:
          host = "null" + suffix;
          addSite(host, 80);
          nullHosts.push_back(host);
          out.hosts.push_back({"http://" + host + "/", truth});
          break;
        default:
          host = "open" + suffix;
          addSite(host, 80);
          out.hosts.push_back({"http://" + host + "/", Mechanism::kNone});
          break;
      }
    }
  }

  if (attachFilters) {
    auto& injector = world.makePacketFilter<simnet::RstInjector>(
        "tl-rst-injector", std::move(rstKeywords), /*holdDownHours=*/24);
    auto& sniFilter = world.makePacketFilter<simnet::SniFilter>(
        "tl-sni-filter", std::move(sniHosts));
    auto& blackhole = world.makePacketFilter<simnet::NullRouteFilter>(
        "tl-null-route", std::move(nullHosts));
    isp.attachPacketFilter(poisoner);
    isp.attachPacketFilter(injector);
    isp.attachPacketFilter(sniFilter);
    isp.attachPacketFilter(blackhole);
  }
  // When filters are off, hosts that "would" be blocked are plain reachable
  // sites; only the injected faults can make them fail.
  return out;
}

bool isCensorshipVerdict(Mechanism mechanism) {
  return mechanism != Mechanism::kNone && mechanism != Mechanism::kInconclusive;
}

std::vector<measure::MechanismVerdict> classifyAll(
    const MechanismWorld& blueprintUnused, std::uint64_t seed,
    double faultRate, bool attachFilters, measure::MechanismOptions options,
    std::size_t threadLimit) {
  (void)blueprintUnused;
  auto mw = buildWorld(seed, faultRate, attachFilters);
  measure::MechanismClassifier classifier(*mw.world, *mw.field, *mw.lab,
                                          options);
  return classifier.classifyList(mw.urls(), threadLimit);
}

TEST(MechanismClassifierProperty, ZeroFaultWorldsNeverInconclusive) {
  for (const std::uint64_t seed : {1u, 7u, 20130813u}) {
    auto mw = buildWorld(seed, 0.0, /*attachFilters=*/true);
    measure::MechanismClassifier classifier(*mw.world, *mw.field, *mw.lab);
    for (const auto& host : mw.hosts) {
      const auto verdict = classifier.classify(host.url);
      EXPECT_NE(verdict.mechanism, Mechanism::kInconclusive)
          << host.url << " seed " << seed;
      EXPECT_EQ(verdict.mechanism, host.truth) << host.url << " seed " << seed;
    }
  }
}

TEST(MechanismClassifierProperty, FaultOnlyWorldsNeverCensorship) {
  // No middlebox anywhere; every failure the classifier sees is an injected
  // substrate fault. Budget >= 3 must never attribute a mechanism.
  for (const std::uint64_t seed : {3u, 11u, 42u, 20131023u}) {
    for (const double rate : {0.01, 0.05}) {
      measure::MechanismOptions options;
      options.trialBudget = 3;
      auto mw = buildWorld(seed, rate, /*attachFilters=*/false);
      measure::MechanismClassifier classifier(*mw.world, *mw.field, *mw.lab,
                                              options);
      for (const auto& host : mw.hosts) {
        const auto verdict = classifier.classify(host.url);
        EXPECT_FALSE(isCensorshipVerdict(verdict.mechanism))
            << host.url << " seed " << seed << " rate " << rate << " -> "
            << toString(verdict.mechanism);
      }
    }
  }
}

TEST(MechanismClassifierProperty, VerdictsByteIdenticalAcrossThreadCounts) {
  // Same world parameters, fresh world per run (collection mutates state);
  // derivation fans out under the given thread limit. Serialized verdict
  // lines must match byte for byte at every width.
  measure::MechanismOptions options;
  options.trialBudget = 3;
  const MechanismWorld unused{};

  for (const double rate : {0.0, 0.05}) {
    const auto serial =
        classifyAll(unused, 99, rate, true, options, /*threadLimit=*/1);
    std::string serialLines;
    for (const auto& verdict : serial) serialLines += toLine(verdict) + "\n";

    for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      const auto pooled =
          classifyAll(unused, 99, rate, true, options, threads);
      std::string pooledLines;
      for (const auto& verdict : pooled) pooledLines += toLine(verdict) + "\n";
      EXPECT_EQ(serialLines, pooledLines) << "threads " << threads
                                          << " rate " << rate;
    }
  }
}

TEST(MechanismClassifierProperty, ReferenceAgreesOnFaultFreeWorlds) {
  // The repo convention: every robust path ships with a reference twin and
  // they agree wherever the reference is defined — here, fault-free worlds.
  for (const std::uint64_t seed : {5u, 77u}) {
    measure::MechanismOptions evidence;
    measure::MechanismOptions reference;
    reference.mode = measure::MechanismMode::kReference;

    auto evidenceWorld = buildWorld(seed, 0.0, true);
    auto referenceWorld = buildWorld(seed, 0.0, true);
    measure::MechanismClassifier evidencePath(
        *evidenceWorld.world, *evidenceWorld.field, *evidenceWorld.lab,
        evidence);
    measure::MechanismClassifier referencePath(
        *referenceWorld.world, *referenceWorld.field, *referenceWorld.lab,
        reference);
    for (std::size_t i = 0; i < evidenceWorld.hosts.size(); ++i) {
      const auto& host = evidenceWorld.hosts[i];
      const auto robust = evidencePath.classify(host.url);
      const auto simple = referencePath.classify(host.url);
      EXPECT_EQ(robust.mechanism, simple.mechanism)
          << host.url << " seed " << seed << ": evidence "
          << toString(robust.mechanism) << " vs reference "
          << toString(simple.mechanism);
    }
  }
}

TEST(MechanismClassifierProperty, DegradedVantageYieldsDegradedProvenance) {
  auto mw = buildWorld(13, 0.0, true);
  measure::HealthRegistry health{measure::BreakerPolicy{}};
  // Force the breaker open by feeding it hard failures.
  auto& breaker = health.of(mw.field->name);
  for (int i = 0; i < 32; ++i)
    breaker.recordOutcome(simnet::FetchOutcome::kTimeout, mw.world->now());

  measure::MechanismOptions options;
  options.health = &health;
  measure::MechanismClassifier classifier(*mw.world, *mw.field, *mw.lab,
                                          options);
  const auto verdict = classifier.classify(mw.hosts.front().url);
  EXPECT_EQ(verdict.mechanism, Mechanism::kInconclusive);
  EXPECT_EQ(verdict.provenance, measure::Provenance::kDegraded);
  EXPECT_EQ(verdict.trials, 0);
}

}  // namespace
