#include <gtest/gtest.h>

#include "http/header_map.h"
#include "http/html.h"
#include "http/message.h"
#include "http/status.h"
#include "http/wire.h"
#include "util/rng.h"

namespace urlf::http {
namespace {

// ---------------------------------------------------------- HeaderMap ----

TEST(HeaderMapTest, CaseInsensitiveGet) {
  HeaderMap headers;
  headers.add("Content-Type", "text/html");
  EXPECT_EQ(headers.get("content-type").value(), "text/html");
  EXPECT_EQ(headers.get("CONTENT-TYPE").value(), "text/html");
  EXPECT_FALSE(headers.get("Content-Length"));
}

TEST(HeaderMapTest, PreservesInsertionOrder) {
  HeaderMap headers{{"B", "2"}, {"A", "1"}, {"C", "3"}};
  ASSERT_EQ(headers.size(), 3u);
  EXPECT_EQ(headers.fields()[0].name, "B");
  EXPECT_EQ(headers.fields()[1].name, "A");
  EXPECT_EQ(headers.fields()[2].name, "C");
}

TEST(HeaderMapTest, AddKeepsDuplicates) {
  HeaderMap headers;
  headers.add("Via", "1.1 a");
  headers.add("via", "1.1 b");
  const auto all = headers.getAll("VIA");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "1.1 a");
  EXPECT_EQ(all[1], "1.1 b");
  EXPECT_EQ(headers.get("Via").value(), "1.1 a");  // first wins
}

TEST(HeaderMapTest, SetReplacesAll) {
  HeaderMap headers;
  headers.add("X", "1");
  headers.add("x", "2");
  headers.set("X", "3");
  EXPECT_EQ(headers.getAll("x").size(), 1u);
  EXPECT_EQ(headers.get("X").value(), "3");
}

TEST(HeaderMapTest, RemoveReturnsCount) {
  HeaderMap headers{{"A", "1"}, {"a", "2"}, {"B", "3"}};
  EXPECT_EQ(headers.remove("A"), 2u);
  EXPECT_EQ(headers.remove("A"), 0u);
  EXPECT_EQ(headers.size(), 1u);
}

TEST(HeaderMapTest, AnyValueContains) {
  HeaderMap headers{{"Via", "1.1 mwg (McAfee Web Gateway 7.2)"}};
  EXPECT_TRUE(headers.anyValueContains("mcafee web gateway"));
  EXPECT_FALSE(headers.anyValueContains("netsweeper"));
}

TEST(HeaderMapTest, SerializeFormat) {
  HeaderMap headers{{"Host", "example.com"}, {"Accept", "*/*"}};
  EXPECT_EQ(headers.serialize(), "Host: example.com\r\nAccept: */*\r\n");
}

TEST(HeaderMapTest, EqualityIsNameCaseInsensitive) {
  HeaderMap a{{"Host", "x"}};
  HeaderMap b{{"host", "x"}};
  HeaderMap c{{"host", "y"}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

// ------------------------------------------------------------- Status ----

TEST(StatusTest, ReasonPhrases) {
  EXPECT_EQ(reasonPhrase(Status::kOk), "OK");
  EXPECT_EQ(reasonPhrase(Status::kForbidden), "Forbidden");
  EXPECT_EQ(reasonPhrase(302), "Found");
  EXPECT_EQ(reasonPhrase(999), "Unknown");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(isRedirectCode(302));
  EXPECT_TRUE(isRedirectCode(301));
  EXPECT_FALSE(isRedirectCode(200));
  EXPECT_TRUE(isSuccessCode(204));
  EXPECT_FALSE(isSuccessCode(302));
}

// ------------------------------------------------------------ Message ----

TEST(MessageTest, GetBuildsStandardHeaders) {
  const auto req = Request::get("http://example.com/page?q=1");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.headers.get("Host").value(), "example.com");
  EXPECT_TRUE(req.headers.contains("User-Agent"));
  EXPECT_EQ(req.requestLine(), "GET /page?q=1 HTTP/1.1");
}

TEST(MessageTest, GetThrowsOnMalformedUrl) {
  EXPECT_THROW(Request::get("not a url"), std::invalid_argument);
}

TEST(MessageTest, ResponseMakeSetsContentHeaders) {
  const auto resp = Response::make(Status::kOk, "hello", "text/plain");
  EXPECT_EQ(resp.statusCode, 200);
  EXPECT_EQ(resp.headers.get("Content-Type").value(), "text/plain");
  EXPECT_EQ(resp.headers.get("Content-Length").value(), "5");
  EXPECT_EQ(resp.statusLine(), "HTTP/1.1 200 OK");
}

TEST(MessageTest, RedirectHelpers) {
  auto resp = Response::make(Status::kFound);
  EXPECT_TRUE(resp.isRedirect());
  EXPECT_FALSE(resp.location());
  resp.headers.add("Location", "http://x.com/");
  EXPECT_EQ(resp.location().value(), "http://x.com/");
}

// --------------------------------------------------------------- Wire ----

TEST(WireTest, SerializeResponse) {
  auto resp = Response::make(Status::kForbidden, "<h1>no</h1>");
  const auto wire = serialize(resp);
  EXPECT_TRUE(wire.starts_with("HTTP/1.1 403 Forbidden\r\n"));
  EXPECT_TRUE(wire.ends_with("\r\n\r\n<h1>no</h1>"));
}

TEST(WireTest, ResponseRoundTrip) {
  auto resp = Response::make(Status::kOk, "body-bytes");
  resp.headers.add("Server", "Netsweeper/5.0");
  const auto parsed = parseResponse(serialize(resp));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->statusCode, 200);
  EXPECT_EQ(parsed->body, "body-bytes");
  EXPECT_EQ(parsed->headers.get("Server").value(), "Netsweeper/5.0");
}

TEST(WireTest, ParseWithoutContentLengthUsesRemainder) {
  const auto parsed = parseResponse(
      "HTTP/1.1 200 OK\r\nServer: x\r\n\r\neverything after blank line");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->body, "everything after blank line");
}

TEST(WireTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parseResponse(""));
  EXPECT_FALSE(parseResponse("garbage"));
  EXPECT_FALSE(parseResponse("HTTP/1.1 XYZ Bad\r\n\r\n"));
  EXPECT_FALSE(parseResponse("HTTP/1.1 200 OK\r\nNoColonHere\r\n\r\n"));
  EXPECT_FALSE(parseResponse("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"));
  EXPECT_FALSE(parseResponse("SPDY/1 200 OK\r\n\r\n"));
}

TEST(WireTest, RequestRoundTrip) {
  auto req = Request::get("http://example.com:8080/path?a=b");
  const auto parsed = parseRequest(serialize(req));
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->url.host(), "example.com");
  EXPECT_EQ(parsed->url.path(), "/path");
  EXPECT_EQ(parsed->url.query(), "a=b");
}

TEST(WireTest, RequestRequiresHostHeader) {
  EXPECT_FALSE(parseRequest("GET / HTTP/1.1\r\nAccept: */*\r\n\r\n"));
}

/// Property: responses with pseudo-random bodies and headers round-trip.
class WireRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireRoundTripProperty, ResponsesRoundTrip) {
  util::Rng rng(GetParam());
  const Status statuses[] = {Status::kOk, Status::kFound, Status::kForbidden,
                             Status::kNotFound, Status::kServiceUnavailable};
  for (int i = 0; i < 50; ++i) {
    std::string body;
    const auto len = rng.uniform(0, 300);
    for (std::uint64_t j = 0; j < len; ++j)
      body += static_cast<char>(rng.uniform(32, 126));  // printable, no CRLF
    auto resp = Response::make(statuses[rng.index(5)], body);
    resp.headers.add("X-Seq", std::to_string(i));
    const auto parsed = parseResponse(serialize(resp));
    ASSERT_TRUE(parsed);
    ASSERT_EQ(parsed->statusCode, resp.statusCode);
    ASSERT_EQ(parsed->body, body);
    ASSERT_EQ(parsed->headers.get("X-Seq").value(), std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WireRoundTripProperty,
                         ::testing::Values(3u, 33u, 333u, 3333u));

// --------------------------------------------------------------- Html ----

TEST(HtmlTest, ExtractTitle) {
  EXPECT_EQ(extractTitle("<html><head><title>McAfee Web Gateway</title>"),
            "McAfee Web Gateway");
  EXPECT_EQ(extractTitle("<TITLE>  padded  </TITLE>"), "padded");
  EXPECT_EQ(extractTitle("<title lang=\"en\">attr</title>"), "attr");
  EXPECT_EQ(extractTitle("no title here"), "");
  EXPECT_EQ(extractTitle("<title>unclosed"), "");
}

TEST(HtmlTest, MakePageEmbedsTitleAndBody) {
  const auto page = makePage("T", "<p>B</p>");
  EXPECT_EQ(extractTitle(page), "T");
  EXPECT_NE(page.find("<p>B</p>"), std::string::npos);
}

TEST(HtmlTest, EscapeSpecials) {
  EXPECT_EQ(escape("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(escape("plain"), "plain");
}

}  // namespace
}  // namespace urlf::http
