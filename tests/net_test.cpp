#include <gtest/gtest.h>

#include "net/cctld.h"
#include "net/ipv4.h"
#include "net/url.h"
#include "util/rng.h"

namespace urlf::net {
namespace {

// --------------------------------------------------------------- Ipv4 ----

TEST(Ipv4Test, ParseAndFormat) {
  const auto ip = Ipv4Addr::parse("192.0.2.7");
  ASSERT_TRUE(ip);
  EXPECT_EQ(ip->toString(), "192.0.2.7");
  EXPECT_EQ(ip->value(), 0xC0000207u);
}

TEST(Ipv4Test, OctetConstructor) {
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).toString(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr(255, 255, 255, 255).value(), 0xFFFFFFFFu);
}

TEST(Ipv4Test, RejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.04"));  // leading zero
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3."));
  EXPECT_FALSE(Ipv4Addr::parse(" 1.2.3.4"));
}

TEST(Ipv4Test, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1).next(), Ipv4Addr(10, 0, 0, 2));
}

TEST(IpPrefixTest, ContainsAndSize) {
  const auto prefix = IpPrefix::parse("192.0.2.0/24");
  ASSERT_TRUE(prefix);
  EXPECT_EQ(prefix->size(), 256u);
  EXPECT_TRUE(prefix->contains(Ipv4Addr(192, 0, 2, 0)));
  EXPECT_TRUE(prefix->contains(Ipv4Addr(192, 0, 2, 255)));
  EXPECT_FALSE(prefix->contains(Ipv4Addr(192, 0, 3, 0)));
}

TEST(IpPrefixTest, BaseIsMasked) {
  const IpPrefix prefix(Ipv4Addr(10, 1, 2, 3), 16);
  EXPECT_EQ(prefix.base().toString(), "10.1.0.0");
  EXPECT_EQ(prefix.toString(), "10.1.0.0/16");
}

TEST(IpPrefixTest, SlashZeroCoversEverything) {
  const IpPrefix prefix(Ipv4Addr{}, 0);
  EXPECT_TRUE(prefix.contains(Ipv4Addr(255, 255, 255, 255)));
  EXPECT_EQ(prefix.size(), std::uint64_t{1} << 32);
}

TEST(IpPrefixTest, Slash32IsSingleHost) {
  const IpPrefix prefix(Ipv4Addr(1, 2, 3, 4), 32);
  EXPECT_EQ(prefix.size(), 1u);
  EXPECT_TRUE(prefix.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_FALSE(prefix.contains(Ipv4Addr(1, 2, 3, 5)));
}

TEST(IpPrefixTest, AddressAtBoundsChecked) {
  const auto prefix = IpPrefix::parse("10.0.0.0/30").value();
  EXPECT_EQ(prefix.addressAt(3).toString(), "10.0.0.3");
  EXPECT_THROW((void)prefix.addressAt(4), std::out_of_range);
}

TEST(IpPrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0"));
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/"));
  EXPECT_FALSE(IpPrefix::parse("10.0.0/8"));
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/x"));
}

TEST(IpPrefixTest, InvalidLengthThrows) {
  EXPECT_THROW(IpPrefix(Ipv4Addr{}, 33), std::invalid_argument);
  EXPECT_THROW(IpPrefix(Ipv4Addr{}, -1), std::invalid_argument);
}

// ---------------------------------------------------------------- Url ----

TEST(UrlTest, ParsesFullUrl) {
  const auto url =
      Url::parse("http://example.com:8080/path/page?x=1&y=2#frag");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme(), "http");
  EXPECT_EQ(url->host(), "example.com");
  EXPECT_EQ(url->explicitPort(), 8080);
  EXPECT_EQ(url->effectivePort(), 8080);
  EXPECT_EQ(url->path(), "/path/page");
  EXPECT_EQ(url->query(), "x=1&y=2");  // fragment dropped
  EXPECT_EQ(url->requestTarget(), "/path/page?x=1&y=2");
}

TEST(UrlTest, DefaultsForBareHost) {
  const auto url = Url::parse("http://example.com");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->effectivePort(), 80);
  EXPECT_FALSE(url->explicitPort());
  EXPECT_EQ(url->toString(), "http://example.com/");
}

TEST(UrlTest, HttpsDefaultPort) {
  const auto url = Url::parse("https://secure.example.com/login");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->effectivePort(), 443);
}

TEST(UrlTest, HostIsLowercased) {
  const auto url = Url::parse("http://Example.COM/Path");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->host(), "example.com");
  EXPECT_EQ(url->path(), "/Path");  // path case preserved
}

TEST(UrlTest, IpLiteralHost) {
  const auto url = Url::parse("http://10.0.0.1:8080/webadmin/");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->host(), "10.0.0.1");
  EXPECT_EQ(url->explicitPort(), 8080);
}

TEST(UrlTest, RejectsMalformed) {
  EXPECT_FALSE(Url::parse(""));
  EXPECT_FALSE(Url::parse("example.com"));           // no scheme
  EXPECT_FALSE(Url::parse("ftp://example.com/"));    // unsupported scheme
  EXPECT_FALSE(Url::parse("http://"));               // empty host
  EXPECT_FALSE(Url::parse("http://:80/"));           // empty host with port
  EXPECT_FALSE(Url::parse("http://user@host/"));     // userinfo unsupported
  EXPECT_FALSE(Url::parse("http://example.com:0/")); // port 0
  EXPECT_FALSE(Url::parse("http://example.com:99999/"));
  EXPECT_FALSE(Url::parse("http://bad host/"));
}

TEST(UrlTest, RoundTripsThroughToString) {
  const char* cases[] = {
      "http://example.com/",
      "http://example.com/path",
      "http://example.com:8080/path?q=1",
      "https://a.b.c.example.com/deep/path?x=y",
      "http://10.1.2.3:15871/cgi-bin/blockpage.cgi?ws-session=42",
  };
  for (const auto* text : cases) {
    const auto url = Url::parse(text);
    ASSERT_TRUE(url) << text;
    const auto again = Url::parse(url->toString());
    ASSERT_TRUE(again) << url->toString();
    EXPECT_EQ(*url, *again);
  }
}

TEST(UrlTest, QueryWithoutPath) {
  const auto url = Url::parse("http://example.com?x=1");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->query(), "x=1");
  EXPECT_EQ(url->requestTarget(), "/?x=1");
}

TEST(UrlTest, FragmentOnlySuffix) {
  const auto url = Url::parse("http://example.com#section");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->query(), "");
}

TEST(UrlTest, QueryParamLookup) {
  EXPECT_EQ(queryParam("a=1&b=2", "b").value(), "2");
  EXPECT_EQ(queryParam("a=1&b=2", "a").value(), "1");
  EXPECT_FALSE(queryParam("a=1&b=2", "c"));
  EXPECT_EQ(queryParam("flag&x=1", "flag").value(), "");
  EXPECT_FALSE(queryParam("", "a"));
  EXPECT_EQ(queryParam("ws-session=777", "ws-session").value(), "777");
}

TEST(UrlTest, ConstructorValidates) {
  EXPECT_THROW(Url("ftp", "x.com", std::nullopt, "/", ""),
               std::invalid_argument);
  EXPECT_THROW(Url("http", "", std::nullopt, "/", ""), std::invalid_argument);
  const Url url("HTTP", "EXAMPLE.com", std::nullopt, "p", "");
  EXPECT_EQ(url.scheme(), "http");
  EXPECT_EQ(url.host(), "example.com");
  EXPECT_EQ(url.path(), "/p");  // leading slash added
}

// ----------------------------------------------------------- Hostname ----

TEST(HostnameTest, ValidNames) {
  EXPECT_TRUE(isValidHostname("example.com"));
  EXPECT_TRUE(isValidHostname("a-b.example.info"));
  EXPECT_TRUE(isValidHostname("x"));
  EXPECT_TRUE(isValidHostname("denypagetests.netsweeper.com"));
}

TEST(HostnameTest, InvalidNames) {
  EXPECT_FALSE(isValidHostname(""));
  EXPECT_FALSE(isValidHostname(".example.com"));
  EXPECT_FALSE(isValidHostname("example..com"));
  EXPECT_FALSE(isValidHostname("example.com."));
  EXPECT_FALSE(isValidHostname("-example.com"));
  EXPECT_FALSE(isValidHostname("example-.com"));
  EXPECT_FALSE(isValidHostname("exa mple.com"));
  EXPECT_FALSE(isValidHostname("10.0.0.1"));  // IP literal is not a hostname
  EXPECT_FALSE(isValidHostname(std::string(254, 'a')));
}

TEST(HostnameTest, LabelLengthLimit) {
  const std::string longLabel(64, 'a');
  EXPECT_FALSE(isValidHostname(longLabel + ".com"));
  EXPECT_TRUE(isValidHostname(std::string(63, 'a') + ".com"));
}

TEST(DomainTest, TopLevelDomain) {
  EXPECT_EQ(topLevelDomain("starwasher.info"), "info");
  EXPECT_EQ(topLevelDomain("www.Example.COM"), "com");
  EXPECT_EQ(topLevelDomain("localhost"), "");
  EXPECT_EQ(topLevelDomain("10.0.0.1"), "");
}

TEST(DomainTest, RegistrableDomain) {
  EXPECT_EQ(registrableDomain("www.example.info"), "example.info");
  EXPECT_EQ(registrableDomain("example.info"), "example.info");
  EXPECT_EQ(registrableDomain("a.b.c.example.info"), "example.info");
  EXPECT_EQ(registrableDomain("localhost"), "localhost");
}

// -------------------------------------------------------------- ccTLD ----

TEST(CctldTest, RegistryCoversThePaperCountries) {
  for (const char* alpha2 : {"SA", "AE", "QA", "YE", "SY", "US", "CA", "PK"}) {
    const auto country = countryByAlpha2(alpha2);
    ASSERT_TRUE(country) << alpha2;
    EXPECT_EQ(country->alpha2, alpha2);
  }
}

TEST(CctldTest, LookupIsCaseInsensitive) {
  const auto country = countryByAlpha2("sa");
  ASSERT_TRUE(country);
  EXPECT_EQ(country->name, "Saudi Arabia");
}

TEST(CctldTest, LookupByName) {
  const auto country = countryByName("yemen");
  ASSERT_TRUE(country);
  EXPECT_EQ(country->alpha2, "YE");
  EXPECT_FALSE(countryByName("Atlantis"));
}

TEST(CctldTest, AllEntriesWellFormed) {
  for (const auto& country : allCountries()) {
    EXPECT_EQ(country.alpha2.size(), 2u);
    EXPECT_EQ(country.cctld.size(), 2u);
    EXPECT_FALSE(country.name.empty());
  }
  EXPECT_GE(allCountries().size(), 40u);
}

/// Property: every URL the hosting provider would mint parses and
/// round-trips.
class UrlMintProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UrlMintProperty, SyntheticHostsParse) {
  util::Rng rng(GetParam());
  const char* tlds[] = {"info", "com", "org", "net"};
  for (int i = 0; i < 100; ++i) {
    std::string host = "host" + std::to_string(rng.uniform(0, 999999));
    host += ".";
    host += tlds[rng.index(4)];
    ASSERT_TRUE(isValidHostname(host)) << host;
    const auto url = Url::parse("http://" + host + "/p?q=" +
                                std::to_string(rng.uniform(0, 99)));
    ASSERT_TRUE(url) << host;
    EXPECT_EQ(Url::parse(url->toString()).value(), *url);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UrlMintProperty,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace urlf::net
