#include <gtest/gtest.h>

#include "measure/session.h"
#include "simnet/fault.h"
#include "simnet/origin_server.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace urlf::simnet {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

/// Always answers 403 with a block-page body — a deterministic "kOk but
/// blocked" outcome for no-retry assertions.
class BlockEverything : public Middlebox {
 public:
  std::string name() const override { return "block-everything"; }

  std::optional<InterceptAction> intercept(http::Request&,
                                           const InterceptContext&) override {
    return InterceptAction::respond(
        http::Response::make(http::Status::kForbidden, "<h1>denied</h1>"));
  }
};

class RetryFixture : public ::testing::Test {
 protected:
  RetryFixture() : world(99) {
    world.createAs(100, "ISP-AS", "Test ISP", "SA", {prefix("10.0.0.0/16")});
    world.createAs(200, "WEB-AS", "Web hosting", "US", {prefix("20.0.0.0/16")});
    isp = &world.createIsp("Test ISP", "SA", {100});
    field = &world.createVantage("field", "SA", isp);

    auto& server = world.makeEndpoint<OriginServer>("site.example");
    Page page;
    page.title = "Site";
    page.body = "<p>hello</p>";
    server.setPage("/", page);
    const auto ip = world.allocateAddress(200);
    world.bind(ip, 80, server, true);
    world.registerHostname("site.example", ip);
  }

  World world;
  Isp* isp = nullptr;
  VantagePoint* field = nullptr;
};

// ------------------------------------------------- RetryPolicy rules ----

TEST(RetryPolicy, DefaultClassification) {
  RetryPolicy policy;
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kOk));
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kBadUrl));
  EXPECT_TRUE(policy.shouldRetry(FetchOutcome::kTimeout));
  EXPECT_TRUE(policy.shouldRetry(FetchOutcome::kReset));
  EXPECT_TRUE(policy.shouldRetry(FetchOutcome::kDnsFailure));
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kConnectFailure));
}

TEST(RetryPolicy, FlagsDisableEachClass) {
  RetryPolicy policy;
  policy.retryOnTimeout = false;
  policy.retryOnReset = false;
  policy.retryOnDns = false;
  policy.retryOnConnectFailure = true;
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kTimeout));
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kReset));
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kDnsFailure));
  EXPECT_TRUE(policy.shouldRetry(FetchOutcome::kConnectFailure));
  // kOk and kBadUrl stay non-retryable no matter the flags.
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kOk));
  EXPECT_FALSE(policy.shouldRetry(FetchOutcome::kBadUrl));
}

TEST(RetryPolicy, BackoffDoublesFromInitial) {
  RetryPolicy policy;  // 1h initial, x2
  EXPECT_EQ(policy.backoffHours(0), 1);
  EXPECT_EQ(policy.backoffHours(1), 2);
  EXPECT_EQ(policy.backoffHours(2), 4);
  EXPECT_EQ(policy.backoffHours(3), 8);
}

TEST(RetryPolicy, BackoffHonorsCustomSchedule) {
  RetryPolicy policy;
  policy.initialBackoffHours = 3;
  policy.backoffMultiplier = 4;
  EXPECT_EQ(policy.backoffHours(0), 3);
  EXPECT_EQ(policy.backoffHours(1), 12);
  EXPECT_EQ(policy.backoffHours(2), 48);

  policy.initialBackoffHours = -5;  // clamped: time never goes backwards
  EXPECT_EQ(policy.backoffHours(0), 0);
  EXPECT_EQ(policy.backoffHours(4), 0);

  policy.initialBackoffHours = 2;
  policy.backoffMultiplier = 0;  // clamped to a constant schedule
  EXPECT_EQ(policy.backoffHours(0), 2);
  EXPECT_EQ(policy.backoffHours(3), 2);
}

// ------------------------------------------------- FaultPlan drawing ----

TEST_F(RetryFixture, ZeroRatePlanNeverFires) {
  const FaultPlan plan(42);
  for (int attempt = 0; attempt < 50; ++attempt)
    EXPECT_EQ(plan.roll(*field, "http://site.example/", attempt),
              FaultKind::kNone);
}

TEST_F(RetryFixture, SaturatedPlanAlwaysFires) {
  const FaultPlan plan(42, FaultRates::uniform(0.25));  // total = 1.0
  for (int attempt = 0; attempt < 50; ++attempt)
    EXPECT_NE(plan.roll(*field, "http://site.example/", attempt),
              FaultKind::kNone);
}

TEST_F(RetryFixture, RollIsPureAndKeyed) {
  const FaultPlan plan(7, FaultRates::uniform(0.1));
  const FaultPlan same(7, FaultRates::uniform(0.1));
  const FaultPlan other(8, FaultRates::uniform(0.1));

  bool anyDiffersAcrossSeeds = false;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::string url =
        "http://site.example/p" + std::to_string(attempt);
    // Same key, same plan parameters: identical draw, call after call.
    EXPECT_EQ(plan.roll(*field, url, 0), plan.roll(*field, url, 0));
    EXPECT_EQ(plan.roll(*field, url, 0), same.roll(*field, url, 0));
    if (plan.roll(*field, url, 0) != other.roll(*field, url, 0))
      anyDiffersAcrossSeeds = true;
  }
  EXPECT_TRUE(anyDiffersAcrossSeeds);
}

TEST_F(RetryFixture, ScopePrecedenceIspOverCountryOverDefault) {
  FaultPlan plan(1, FaultRates::uniform(0.01));
  EXPECT_EQ(plan.ratesFor(*field), FaultRates::uniform(0.01));

  plan.setCountryRates("SA", FaultRates::uniform(0.05));
  EXPECT_EQ(plan.ratesFor(*field), FaultRates::uniform(0.05));

  plan.setIspRates("Test ISP", FaultRates::uniform(0.2));
  EXPECT_EQ(plan.ratesFor(*field), FaultRates::uniform(0.2));

  const VantagePoint elsewhere{"other", "YE", nullptr};
  EXPECT_EQ(plan.ratesFor(elsewhere), FaultRates::uniform(0.01));
}

// -------------------------------------- Transport x retry interaction ----

TEST_F(RetryFixture, ExhaustedRetriesAdvanceClockExactly) {
  FaultRates rates;
  rates.dnsFlap = 1.0;  // every attempt fails the same way
  world.setFaultPlan(FaultPlan(5, rates));

  FetchOptions options;
  options.retry.maxAttempts = 3;
  const auto before = world.clock().now();

  Transport transport(world);
  const auto result =
      transport.fetchUrl(*field, "http://site.example/", options);

  EXPECT_EQ(result.outcome, FetchOutcome::kDnsFailure);
  EXPECT_EQ(result.injectedFault, FaultKind::kDnsFlap);
  EXPECT_EQ(result.attempts, 3);
  // Backoff after attempts 0 and 1 only: 1h + 2h. No wait after the last.
  EXPECT_EQ(world.clock().now() - before, 3);
}

TEST_F(RetryFixture, SuccessOnRetryStopsTheLoop) {
  // Hunt for a seed where attempt 0 faults but attempt 1 runs clean; the
  // draw is a pure function of the key, so this search is deterministic.
  const auto rates = FaultRates::uniform(0.125);  // total = 0.5
  std::uint64_t chosen = 0;
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    const FaultPlan probe(seed, rates);
    if (probe.roll(*field, "http://site.example/", 0) != FaultKind::kNone &&
        probe.roll(*field, "http://site.example/", 1) == FaultKind::kNone) {
      chosen = seed;
      break;
    }
  }
  ASSERT_NE(chosen, 0u);
  world.setFaultPlan(FaultPlan(chosen, rates));

  FetchOptions options;
  options.retry.maxAttempts = 4;
  options.retry.retryOnConnectFailure = true;  // all fault kinds retryable

  Transport transport(world);
  const auto result =
      transport.fetchUrl(*field, "http://site.example/", options);

  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(result.injectedFault, FaultKind::kNone);
}

TEST_F(RetryFixture, BlockPageIsNeverRetried) {
  auto& box = world.makeMiddlebox<BlockEverything>();
  isp->attachMiddlebox(box);

  FetchOptions options;
  options.retry.maxAttempts = 5;
  const auto before = world.clock().now();

  Transport transport(world);
  const auto result =
      transport.fetchUrl(*field, "http://site.example/", options);

  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.response->statusCode, 403);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(world.clock().now(), before);  // no backoff consumed
}

TEST_F(RetryFixture, BadUrlIsNeverRetried) {
  FetchOptions options;
  options.retry.maxAttempts = 5;
  const auto before = world.clock().now();

  Transport transport(world);
  const auto result = transport.fetchUrl(*field, "not a url", options);

  EXPECT_EQ(result.outcome, FetchOutcome::kBadUrl);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(world.clock().now(), before);
}

TEST_F(RetryFixture, InjectedFaultSurvivesSessionRoundTrip) {
  FaultRates rates;
  rates.timeout = 1.0;
  world.setFaultPlan(FaultPlan(5, rates));
  const auto& lab = world.createVantage("lab", "CA", nullptr);

  FetchOptions options;
  options.retry.maxAttempts = 2;
  measure::Client client(world, *field, lab, options);
  const std::vector<measure::UrlTestResult> results{
      client.testUrl("http://site.example/")};
  ASSERT_EQ(results[0].field.injectedFault, FaultKind::kTimeout);
  ASSERT_EQ(results[0].field.attempts, 2);

  const auto text = measure::exportSession(results, 2);
  const auto imported = measure::importSession(text);
  ASSERT_TRUE(imported.has_value());
  ASSERT_EQ(imported->size(), 1u);
  EXPECT_EQ((*imported)[0].field.injectedFault, FaultKind::kTimeout);
  EXPECT_EQ((*imported)[0].field.attempts, 2);
  // Round-trip is lossless: re-export reproduces the original bytes.
  EXPECT_EQ(measure::exportSession(*imported, 2), text);
}

TEST_F(RetryFixture, OrganicDnsFailureRetainsNoInjectedFault) {
  FetchOptions options;
  options.retry.maxAttempts = 2;

  Transport transport(world);
  const auto result =
      transport.fetchUrl(*field, "http://nonexistent.example/", options);

  EXPECT_EQ(result.outcome, FetchOutcome::kDnsFailure);
  EXPECT_EQ(result.injectedFault, FaultKind::kNone);
  EXPECT_EQ(result.attempts, 2);  // organic NXDOMAIN is still retried
}

}  // namespace
}  // namespace urlf::simnet
