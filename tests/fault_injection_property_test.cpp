// Property tests for the fault-injection layer (DESIGN.md §4): zero-rate
// plans are invisible byte-for-byte, outcomes are independent of worker-pool
// width, and confirmation verdicts survive sub-threshold fault rates.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "measure/session.h"
#include "scenarios/random_world.h"
#include "simnet/fault.h"

namespace urlf {
namespace {

using scenarios::RandomWorld;
using scenarios::RandomWorldConfig;

/// Sub-threshold fault preset: per-process rate plus the retry budget that
/// rides it out. BENCH_faults.json locates the verdict-flip point well above
/// this rate (see bench/ablation_faults.cpp).
constexpr double kSubThresholdRate = 0.02;

simnet::FetchOptions resilientFetchOptions() {
  simnet::FetchOptions options;
  options.retry.maxAttempts = 4;
  options.retry.retryOnConnectFailure = true;
  return options;
}

/// A deterministic URL workload exercising every outcome class: fresh
/// hosted domains, a decoy, an NXDOMAIN, and a parse failure.
std::vector<std::string> workload(RandomWorld& random) {
  std::vector<std::string> urls;
  for (int i = 0; i < 4; ++i) {
    const auto domain =
        random.hosting().createFreshDomain(simnet::ContentProfile::kGlypeProxy);
    urls.push_back("http://" + domain.hostname + "/");
  }
  urls.push_back("http://decoy0.example/");
  urls.push_back("http://nonexistent.example/");
  urls.push_back("http:////bad url");
  return urls;
}

std::string measureSession(RandomWorld& random,
                           const simnet::FetchOptions& options) {
  auto& world = random.world();
  const auto* field = world.findVantage(random.fieldVantages().front());
  const auto* lab = world.findVantage(RandomWorld::kLabVantage);
  measure::Client client(world, *field, *lab, options);
  return measure::exportSession(client.testList(workload(random)), 2);
}

std::string bannerFingerprint(const scan::BannerIndex& index) {
  std::ostringstream out;
  for (const auto& record : index.records())
    out << record.ip.toString() << ':' << record.port << ' '
        << record.statusCode << ' ' << record.countryAlpha2 << ' '
        << record.title << '\n'
        << record.searchableText() << '\n';
  return out.str();
}

std::string installationsFingerprint(RandomWorld& random,
                                     const scan::BannerIndex& index) {
  auto& world = random.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  std::ostringstream out;
  for (const auto& [product, installations] : identifier.identifyAll()) {
    for (const auto& inst : installations) {
      out << filters::toString(product) << ' ' << inst.ip.toString() << ':'
          << inst.port << ' ' << inst.countryAlpha2 << ' ' << inst.certainty
          << '\n';
      for (const auto& line : inst.evidence) out << "  " << line << '\n';
    }
  }
  return out.str();
}

class FaultProperty : public ::testing::TestWithParam<std::uint64_t> {};

// (a) A zero-rate plan must be indistinguishable from no plan at all —
// byte-for-byte on the full recorded session, retries enabled on both.
TEST_P(FaultProperty, ZeroRatePlanIsByteForByteInvisible) {
  RandomWorld plain(GetParam());
  RandomWorld planned(GetParam());
  planned.world().setFaultPlan(
      simnet::FaultPlan(0xDEADBEEFULL, simnet::FaultRates{}));

  const auto options = resilientFetchOptions();
  EXPECT_EQ(measureSession(plain, options), measureSession(planned, options));
}

// (b) With a nonzero plan installed, the pipeline's output is a pure
// function of the seed: a serial crawl and a pooled crawl of identically
// seeded worlds yield byte-identical banners, installations, and recorded
// measurement sessions. Fault draws are keyed hashes, never consumed from a
// shared stream, so worker-pool width cannot reorder them.
TEST_P(FaultProperty, OutcomeIndependentOfThreadCount) {
  RandomWorldConfig config;
  config.faultRate = 0.05;

  RandomWorld serial(GetParam(), config);
  RandomWorld pooled(GetParam(), config);

  const auto geoSerial = serial.world().buildGeoDatabase();
  const auto geoPooled = pooled.world().buildGeoDatabase();
  scan::BannerIndex indexSerial;
  indexSerial.crawl(serial.world(), geoSerial, 2048, /*threadLimit=*/1);
  scan::BannerIndex indexPooled;
  indexPooled.crawl(pooled.world(), geoPooled, 2048, /*threadLimit=*/0);

  EXPECT_EQ(bannerFingerprint(indexSerial), bannerFingerprint(indexPooled));
  EXPECT_EQ(installationsFingerprint(serial, indexSerial),
            installationsFingerprint(pooled, indexPooled));

  const auto options = resilientFetchOptions();
  EXPECT_EQ(measureSession(serial, options), measureSession(pooled, options));
}

// (c) Confirmation verdicts are stable under sub-threshold fault rates:
// retries plus multi-pass retesting absorb the injected flakiness, so every
// case study decided on a clean world decides the same way on a faulty one.
TEST_P(FaultProperty, ConfirmationStableUnderSubThresholdFaults) {
  RandomWorld clean(GetParam());
  RandomWorldConfig faultyConfig;
  faultyConfig.faultRate = kSubThresholdRate;
  RandomWorld faulty(GetParam(), faultyConfig);

  ASSERT_EQ(clean.deployments().size(), faulty.deployments().size());
  int tested = 0;
  for (std::size_t i = 0; i < clean.deployments().size(); ++i) {
    if (tested++ >= 2) break;  // runtime bound; the seed sweep covers space
    const auto& info = clean.deployments()[i];

    core::CaseStudyConfig config;
    config.product = info.kind;
    config.ispName = info.ispName;
    config.countryAlpha2 = info.countryAlpha2;
    config.fieldVantage = info.fieldVantage;
    config.labVantage = RandomWorld::kLabVantage;
    config.categoryName = info.proxyCategoryName;
    config.profile = simnet::ContentProfile::kGlypeProxy;
    config.totalSites = 6;
    config.sitesToSubmit = 3;
    config.waitDays = 5;

    core::Confirmer cleanConfirmer(clean.world(), clean.hosting(),
                                   clean.vendorSet());
    const auto baseline = cleanConfirmer.run(config);

    config.fetchOptions = resilientFetchOptions();
    config.retestRuns = 2;
    core::Confirmer faultyConfirmer(faulty.world(), faulty.hosting(),
                                    faulty.vendorSet());
    const auto observed = faultyConfirmer.run(config);

    EXPECT_EQ(baseline.confirmed, observed.confirmed)
        << filters::toString(info.kind) << " in " << info.ispName
        << " flipped at rate " << kSubThresholdRate << "\nnotes: "
        << observed.notes << "\nblocked " << observed.blockedRatio()
        << " attributed " << observed.attributedToProduct << " pretest "
        << observed.pretestAccessibleCount;
    EXPECT_EQ(observed.controlBlocked, 0) << info.ispName;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

}  // namespace
}  // namespace urlf
