// Monotonicity and boundary properties of the deployment policy knobs:
// blocking can only shrink as sync coverage drops, as update lag grows, or
// as offline probability rises — swept over a grid of configurations.
#include <gtest/gtest.h>

#include "filters/netsweeper.h"
#include "filters/vendor.h"
#include "simnet/hosting.h"
#include "simnet/transport.h"

namespace urlf::filters {
namespace {

net::IpPrefix prefix(const char* text) {
  return net::IpPrefix::parse(text).value();
}

/// World with one Netsweeper ISP and a set of vendor-categorized domains;
/// counts how many of them are blocked from the field under a policy.
class PolicyGrid : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  PolicyGrid() : world(GetParam()), vendor(ProductKind::kNetsweeper, world) {
    world.createAs(100, "ISP-AS", "ISP", "QA", {prefix("10.0.0.0/16")});
    world.createAs(200, "HOST-AS", "Host", "US", {prefix("20.0.0.0/16")});
    isp = &world.createIsp("ISP", "QA", {100});
    field = &world.createVantage("field", "QA", isp);
    hosting = std::make_unique<simnet::HostingProvider>(world, 200);

    // 12 categorized domains, entries stamped at t=0.
    for (int i = 0; i < 12; ++i) {
      const auto domain =
          hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
      vendor.masterDb().addHost(domain.hostname, 43, util::SimTime{0});
      hosts.push_back(domain.hostname);
    }
  }

  /// Deploy with `policy`, fetch every host once, count blocks.
  int blockedCount(FilterPolicy policy) {
    policy.blockedCategories = {43};
    auto& deployment = world.makeMiddlebox<NetsweeperDeployment>(
        "grid-" + std::to_string(deploymentCount++), vendor, policy);
    deployment.installExternalSurfaces(world, 100);
    isp->attachMiddlebox(deployment);

    simnet::Transport transport(world);
    int blocked = 0;
    for (const auto& host : hosts) {
      const auto result = transport.fetchUrl(*field, "http://" + host + "/");
      if (result.ok() && result.response->statusCode != 200) ++blocked;
    }
    // The chain is append-only; continue with a fresh ISP + vantage so the
    // next configuration starts clean.
    detach();
    return blocked;
  }

  void detach() {
    // Isp has no detach API by design; emulate sequential configs with a
    // fresh ISP per measurement instead.
    isp = &world.createIsp("ISP-" + std::to_string(deploymentCount), "QA",
                           {100});
    field = &world.createVantage("field-" + std::to_string(deploymentCount),
                                 "QA", isp);
  }

  simnet::World world;
  Vendor vendor;
  simnet::Isp* isp = nullptr;
  simnet::VantagePoint* field = nullptr;
  std::unique_ptr<simnet::HostingProvider> hosting;
  std::vector<std::string> hosts;
  int deploymentCount = 0;
};

TEST_P(PolicyGrid, BlockingMonotoneInSyncCoverage) {
  int previous = -1;
  for (const double coverage : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    FilterPolicy policy;
    policy.syncCoverage = coverage;
    policy.syncSalt = GetParam();
    const int blocked = blockedCount(policy);
    if (previous >= 0) {
      EXPECT_GE(blocked, previous) << coverage;
    }
    previous = blocked;
  }
  EXPECT_EQ(previous, 12);  // full coverage blocks everything
}

TEST_P(PolicyGrid, BlockingMonotoneInUpdateLag) {
  world.clock().advanceHours(100);  // entries are 100h old now
  int previous = 13;
  for (const std::int64_t lag : {0, 50, 99, 100, 101, 500}) {
    FilterPolicy policy;
    policy.updateLagHours = lag;
    const int blocked = blockedCount(policy);
    EXPECT_LE(blocked, previous) << lag;
    previous = blocked;
    // Lag <= 100h: entries visible; beyond: not yet synced.
    if (lag <= 100)
      EXPECT_EQ(blocked, 12) << lag;
    else
      EXPECT_EQ(blocked, 0) << lag;
  }
}

TEST_P(PolicyGrid, OfflineProbabilityExtremes) {
  FilterPolicy alwaysOn;
  alwaysOn.offlineProbability = 0.0;
  EXPECT_EQ(blockedCount(alwaysOn), 12);

  FilterPolicy alwaysOff;
  alwaysOff.offlineProbability = 1.0;
  EXPECT_EQ(blockedCount(alwaysOff), 0);
}

TEST_P(PolicyGrid, FrozenDeploymentEqualsSnapshotTime) {
  // Freeze before any entries are visible to a lagged deployment: nothing
  // ever blocks, regardless of how the master DB grows afterwards.
  FilterPolicy policy;
  policy.blockedCategories = {43};
  auto& deployment = world.makeMiddlebox<NetsweeperDeployment>(
      "frozen", vendor, policy);
  deployment.installExternalSurfaces(world, 100);

  // Snapshot now, then add a new categorized host.
  deployment.freezeUpdates();
  const auto late =
      hosting->createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  vendor.masterDb().addHost(late.hostname, 43, world.now());

  auto& freshIsp = world.createIsp("ISP-frozen", "QA", {100});
  freshIsp.attachMiddlebox(deployment);
  auto& vantage = world.createVantage("field-frozen", "QA", &freshIsp);

  simnet::Transport transport(world);
  // Pre-freeze hosts still block; the late host never does.
  {
    const auto result = transport.fetchUrl(vantage, "http://" + hosts[0] + "/");
    EXPECT_NE(result.response->statusCode, 200);
  }
  EXPECT_EQ(transport.fetchUrl(vantage, "http://" + late.hostname + "/")
                .response->statusCode,
            200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyGrid,
                         ::testing::Values(11u, 222u, 3333u));

}  // namespace
}  // namespace urlf::filters
