// Fuzz-style property tests over procedurally generated worlds: the
// methodology's guarantees must hold on topologies nobody hand-crafted.
#include <gtest/gtest.h>

#include <set>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "scenarios/random_world.h"

namespace urlf {
namespace {

using scenarios::RandomWorld;

std::map<filters::ProductKind, std::vector<core::Installation>> identify(
    RandomWorld& random) {
  auto& world = random.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  return identifier.identifyAll();
}

class RandomWorldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorldProperty, GenerationIsDeterministic) {
  RandomWorld a(GetParam());
  RandomWorld b(GetParam());
  ASSERT_EQ(a.deployments().size(), b.deployments().size());
  for (std::size_t i = 0; i < a.deployments().size(); ++i) {
    EXPECT_EQ(a.deployments()[i].serviceIp, b.deployments()[i].serviceIp);
    EXPECT_EQ(a.deployments()[i].kind, b.deployments()[i].kind);
    EXPECT_EQ(a.deployments()[i].countryAlpha2,
              b.deployments()[i].countryAlpha2);
  }
}

TEST_P(RandomWorldProperty, IdentificationRecallAndVisibilityBoundary) {
  RandomWorld random(GetParam());
  const auto all = identify(random);

  for (const auto& info : random.deployments()) {
    const auto& found = all.at(info.kind);
    const bool present = std::any_of(
        found.begin(), found.end(), [&](const core::Installation& inst) {
          return inst.ip == info.serviceIp;
        });
    // Visible deployments are always found; hidden ones never are.
    EXPECT_EQ(present, info.externallyVisible)
        << filters::toString(info.kind) << " in " << info.countryAlpha2;
  }
}

TEST_P(RandomWorldProperty, IdentificationGeoAndAsnAreCorrect) {
  RandomWorld random(GetParam());
  const auto all = identify(random);

  std::map<std::uint32_t, const RandomWorld::DeploymentInfo*> byIp;
  for (const auto& info : random.deployments())
    byIp.emplace(info.serviceIp.value(), &info);

  for (const auto& [product, installations] : all) {
    for (const auto& inst : installations) {
      const auto it = byIp.find(inst.ip.value());
      if (it == byIp.end()) continue;  // vendor infra etc.
      EXPECT_EQ(inst.countryAlpha2, it->second->countryAlpha2);
      ASSERT_TRUE(inst.asn.has_value());
      EXPECT_EQ(inst.asn->asn, it->second->asn);
      EXPECT_EQ(product, it->second->kind);
    }
  }
}

TEST_P(RandomWorldProperty, NoDecoyEverValidates) {
  RandomWorld random(GetParam());
  const auto all = identify(random);

  std::set<std::uint32_t> deploymentIps;
  for (const auto& info : random.deployments())
    deploymentIps.insert(info.serviceIp.value());

  // Vendor-operated infrastructure genuinely carries product signatures
  // (Netsweeper's denypagetests origin and submission portal); collect its
  // addresses so it is allowed but nothing else is.
  std::set<std::uint32_t> vendorInfraIps;
  for (const char* host :
       {"denypagetests.netsweeper.com", "testasite.netsweeper.com",
        "sitereview.bluecoat.com", "trustedsource.mcafee.example",
        "csi.websense.example", "www.cfauth.com"}) {
    if (const auto ip = random.world().resolve(host))
      vendorInfraIps.insert(ip->value());
  }

  for (const auto& [product, installations] : all) {
    for (const auto& inst : installations) {
      if (deploymentIps.contains(inst.ip.value())) continue;
      EXPECT_TRUE(vendorInfraIps.contains(inst.ip.value()))
          << "unexpected validation: " << inst.ip.toString() << " as "
          << filters::toString(product);
    }
  }
}

TEST_P(RandomWorldProperty, ConfirmationMatchesDeploymentTruth) {
  RandomWorld random(GetParam());
  core::Confirmer confirmer(random.world(), random.hosting(),
                            random.vendorSet());

  // Confirm each product where it is deployed (cap the count to bound
  // runtime; the sweep across seeds covers the space).
  int tested = 0;
  for (const auto& info : random.deployments()) {
    if (tested++ >= 3) break;
    core::CaseStudyConfig config;
    config.product = info.kind;
    config.ispName = info.ispName;
    config.countryAlpha2 = info.countryAlpha2;
    config.fieldVantage = info.fieldVantage;
    config.labVantage = RandomWorld::kLabVantage;
    config.categoryName = info.proxyCategoryName;
    config.profile = simnet::ContentProfile::kGlypeProxy;
    config.totalSites = 6;
    config.sitesToSubmit = 3;
    config.waitDays = 5;
    const auto result = confirmer.run(config);
    EXPECT_TRUE(result.confirmed)
        << filters::toString(info.kind) << " in " << info.ispName;
    EXPECT_EQ(result.controlBlocked, 0) << info.ispName;
  }
}

TEST_P(RandomWorldProperty, NoFalseConfirmationWhereProductAbsent) {
  RandomWorld random(GetParam());
  core::Confirmer confirmer(random.world(), random.hosting(),
                            random.vendorSet());

  // For the first deployment's ISP, pick a product NOT deployed there and
  // confirm it is not confirmed.
  if (random.deployments().empty()) GTEST_SKIP();
  const auto& info = random.deployments().front();
  const auto otherKind =
      info.kind == filters::ProductKind::kSmartFilter
          ? filters::ProductKind::kWebsense
          : filters::ProductKind::kSmartFilter;

  core::CaseStudyConfig config;
  config.product = otherKind;
  config.ispName = info.ispName;
  config.countryAlpha2 = info.countryAlpha2;
  config.fieldVantage = info.fieldVantage;
  config.labVantage = RandomWorld::kLabVantage;
  config.categoryName = otherKind == filters::ProductKind::kWebsense
                            ? "Proxy Avoidance"
                            : "Anonymizers";
  config.profile = simnet::ContentProfile::kGlypeProxy;
  config.totalSites = 6;
  config.sitesToSubmit = 3;
  config.waitDays = 5;
  const auto result = confirmer.run(config);
  EXPECT_FALSE(result.confirmed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorldProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

// A heavier configuration: many countries, mostly-deployed, some hidden.
TEST(RandomWorldStress, LargeWorldInvariantsHold) {
  scenarios::RandomWorldConfig config;
  config.countries = 24;
  config.deploymentProbability = 0.8;
  config.hiddenProbability = 0.3;
  config.decoys = 12;
  config.contentSites = 24;
  RandomWorld random(999, config);

  EXPECT_GE(random.deployments().size(), 10u);
  const auto all = identify(random);

  int visible = 0;
  for (const auto& info : random.deployments()) {
    if (info.externallyVisible) ++visible;
    const auto& found = all.at(info.kind);
    const bool present = std::any_of(
        found.begin(), found.end(), [&](const core::Installation& inst) {
          return inst.ip == info.serviceIp;
        });
    EXPECT_EQ(present, info.externallyVisible) << info.ispName;
  }
  EXPECT_GT(visible, 0);
}

}  // namespace
}  // namespace urlf
