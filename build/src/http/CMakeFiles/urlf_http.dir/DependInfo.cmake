
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/header_map.cpp" "src/http/CMakeFiles/urlf_http.dir/header_map.cpp.o" "gcc" "src/http/CMakeFiles/urlf_http.dir/header_map.cpp.o.d"
  "/root/repo/src/http/html.cpp" "src/http/CMakeFiles/urlf_http.dir/html.cpp.o" "gcc" "src/http/CMakeFiles/urlf_http.dir/html.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/http/CMakeFiles/urlf_http.dir/message.cpp.o" "gcc" "src/http/CMakeFiles/urlf_http.dir/message.cpp.o.d"
  "/root/repo/src/http/status.cpp" "src/http/CMakeFiles/urlf_http.dir/status.cpp.o" "gcc" "src/http/CMakeFiles/urlf_http.dir/status.cpp.o.d"
  "/root/repo/src/http/wire.cpp" "src/http/CMakeFiles/urlf_http.dir/wire.cpp.o" "gcc" "src/http/CMakeFiles/urlf_http.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
