file(REMOVE_RECURSE
  "liburlf_http.a"
)
