file(REMOVE_RECURSE
  "CMakeFiles/urlf_http.dir/header_map.cpp.o"
  "CMakeFiles/urlf_http.dir/header_map.cpp.o.d"
  "CMakeFiles/urlf_http.dir/html.cpp.o"
  "CMakeFiles/urlf_http.dir/html.cpp.o.d"
  "CMakeFiles/urlf_http.dir/message.cpp.o"
  "CMakeFiles/urlf_http.dir/message.cpp.o.d"
  "CMakeFiles/urlf_http.dir/status.cpp.o"
  "CMakeFiles/urlf_http.dir/status.cpp.o.d"
  "CMakeFiles/urlf_http.dir/wire.cpp.o"
  "CMakeFiles/urlf_http.dir/wire.cpp.o.d"
  "liburlf_http.a"
  "liburlf_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
