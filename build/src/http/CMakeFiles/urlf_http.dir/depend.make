# Empty dependencies file for urlf_http.
# This may be replaced when dependencies are built.
