file(REMOVE_RECURSE
  "CMakeFiles/urlf_filters.dir/bluecoat.cpp.o"
  "CMakeFiles/urlf_filters.dir/bluecoat.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/category.cpp.o"
  "CMakeFiles/urlf_filters.dir/category.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/category_db.cpp.o"
  "CMakeFiles/urlf_filters.dir/category_db.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/deployment.cpp.o"
  "CMakeFiles/urlf_filters.dir/deployment.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/netsweeper.cpp.o"
  "CMakeFiles/urlf_filters.dir/netsweeper.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/smartfilter.cpp.o"
  "CMakeFiles/urlf_filters.dir/smartfilter.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/vendor.cpp.o"
  "CMakeFiles/urlf_filters.dir/vendor.cpp.o.d"
  "CMakeFiles/urlf_filters.dir/websense.cpp.o"
  "CMakeFiles/urlf_filters.dir/websense.cpp.o.d"
  "liburlf_filters.a"
  "liburlf_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
