# Empty dependencies file for urlf_filters.
# This may be replaced when dependencies are built.
