file(REMOVE_RECURSE
  "liburlf_filters.a"
)
