
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/bluecoat.cpp" "src/filters/CMakeFiles/urlf_filters.dir/bluecoat.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/bluecoat.cpp.o.d"
  "/root/repo/src/filters/category.cpp" "src/filters/CMakeFiles/urlf_filters.dir/category.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/category.cpp.o.d"
  "/root/repo/src/filters/category_db.cpp" "src/filters/CMakeFiles/urlf_filters.dir/category_db.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/category_db.cpp.o.d"
  "/root/repo/src/filters/deployment.cpp" "src/filters/CMakeFiles/urlf_filters.dir/deployment.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/deployment.cpp.o.d"
  "/root/repo/src/filters/netsweeper.cpp" "src/filters/CMakeFiles/urlf_filters.dir/netsweeper.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/netsweeper.cpp.o.d"
  "/root/repo/src/filters/smartfilter.cpp" "src/filters/CMakeFiles/urlf_filters.dir/smartfilter.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/smartfilter.cpp.o.d"
  "/root/repo/src/filters/vendor.cpp" "src/filters/CMakeFiles/urlf_filters.dir/vendor.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/vendor.cpp.o.d"
  "/root/repo/src/filters/websense.cpp" "src/filters/CMakeFiles/urlf_filters.dir/websense.cpp.o" "gcc" "src/filters/CMakeFiles/urlf_filters.dir/websense.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/urlf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/urlf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/urlf_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
