file(REMOVE_RECURSE
  "CMakeFiles/urlf_util.dir/base64.cpp.o"
  "CMakeFiles/urlf_util.dir/base64.cpp.o.d"
  "CMakeFiles/urlf_util.dir/clock.cpp.o"
  "CMakeFiles/urlf_util.dir/clock.cpp.o.d"
  "CMakeFiles/urlf_util.dir/rng.cpp.o"
  "CMakeFiles/urlf_util.dir/rng.cpp.o.d"
  "CMakeFiles/urlf_util.dir/strings.cpp.o"
  "CMakeFiles/urlf_util.dir/strings.cpp.o.d"
  "liburlf_util.a"
  "liburlf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
