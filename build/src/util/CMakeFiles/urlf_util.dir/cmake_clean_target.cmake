file(REMOVE_RECURSE
  "liburlf_util.a"
)
