# Empty compiler generated dependencies file for urlf_util.
# This may be replaced when dependencies are built.
