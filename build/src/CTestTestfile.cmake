# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("http")
subdirs("geo")
subdirs("simnet")
subdirs("filters")
subdirs("scan")
subdirs("fingerprint")
subdirs("measure")
subdirs("core")
subdirs("scenarios")
subdirs("report")
