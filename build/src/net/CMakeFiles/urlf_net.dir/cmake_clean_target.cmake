file(REMOVE_RECURSE
  "liburlf_net.a"
)
