# Empty compiler generated dependencies file for urlf_net.
# This may be replaced when dependencies are built.
