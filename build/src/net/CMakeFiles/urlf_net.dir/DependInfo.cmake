
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cctld.cpp" "src/net/CMakeFiles/urlf_net.dir/cctld.cpp.o" "gcc" "src/net/CMakeFiles/urlf_net.dir/cctld.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/urlf_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/urlf_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/url.cpp" "src/net/CMakeFiles/urlf_net.dir/url.cpp.o" "gcc" "src/net/CMakeFiles/urlf_net.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
