file(REMOVE_RECURSE
  "CMakeFiles/urlf_net.dir/cctld.cpp.o"
  "CMakeFiles/urlf_net.dir/cctld.cpp.o.d"
  "CMakeFiles/urlf_net.dir/ipv4.cpp.o"
  "CMakeFiles/urlf_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/urlf_net.dir/url.cpp.o"
  "CMakeFiles/urlf_net.dir/url.cpp.o.d"
  "liburlf_net.a"
  "liburlf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
