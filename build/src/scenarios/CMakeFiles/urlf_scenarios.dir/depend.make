# Empty dependencies file for urlf_scenarios.
# This may be replaced when dependencies are built.
