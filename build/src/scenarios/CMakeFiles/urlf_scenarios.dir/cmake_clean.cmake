file(REMOVE_RECURSE
  "CMakeFiles/urlf_scenarios.dir/paper_world.cpp.o"
  "CMakeFiles/urlf_scenarios.dir/paper_world.cpp.o.d"
  "CMakeFiles/urlf_scenarios.dir/random_world.cpp.o"
  "CMakeFiles/urlf_scenarios.dir/random_world.cpp.o.d"
  "CMakeFiles/urlf_scenarios.dir/yemen2009.cpp.o"
  "CMakeFiles/urlf_scenarios.dir/yemen2009.cpp.o.d"
  "liburlf_scenarios.a"
  "liburlf_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
