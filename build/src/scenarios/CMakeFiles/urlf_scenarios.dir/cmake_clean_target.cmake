file(REMOVE_RECURSE
  "liburlf_scenarios.a"
)
