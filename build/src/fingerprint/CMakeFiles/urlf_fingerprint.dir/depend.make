# Empty dependencies file for urlf_fingerprint.
# This may be replaced when dependencies are built.
