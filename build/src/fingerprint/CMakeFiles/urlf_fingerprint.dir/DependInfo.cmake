
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/engine.cpp" "src/fingerprint/CMakeFiles/urlf_fingerprint.dir/engine.cpp.o" "gcc" "src/fingerprint/CMakeFiles/urlf_fingerprint.dir/engine.cpp.o.d"
  "/root/repo/src/fingerprint/matcher.cpp" "src/fingerprint/CMakeFiles/urlf_fingerprint.dir/matcher.cpp.o" "gcc" "src/fingerprint/CMakeFiles/urlf_fingerprint.dir/matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/filters/CMakeFiles/urlf_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/urlf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/urlf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/urlf_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
