file(REMOVE_RECURSE
  "liburlf_fingerprint.a"
)
