file(REMOVE_RECURSE
  "CMakeFiles/urlf_fingerprint.dir/engine.cpp.o"
  "CMakeFiles/urlf_fingerprint.dir/engine.cpp.o.d"
  "CMakeFiles/urlf_fingerprint.dir/matcher.cpp.o"
  "CMakeFiles/urlf_fingerprint.dir/matcher.cpp.o.d"
  "liburlf_fingerprint.a"
  "liburlf_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
