file(REMOVE_RECURSE
  "liburlf_measure.a"
)
