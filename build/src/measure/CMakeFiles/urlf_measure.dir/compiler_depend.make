# Empty compiler generated dependencies file for urlf_measure.
# This may be replaced when dependencies are built.
