file(REMOVE_RECURSE
  "CMakeFiles/urlf_measure.dir/blockpage.cpp.o"
  "CMakeFiles/urlf_measure.dir/blockpage.cpp.o.d"
  "CMakeFiles/urlf_measure.dir/client.cpp.o"
  "CMakeFiles/urlf_measure.dir/client.cpp.o.d"
  "CMakeFiles/urlf_measure.dir/mining.cpp.o"
  "CMakeFiles/urlf_measure.dir/mining.cpp.o.d"
  "CMakeFiles/urlf_measure.dir/repeated.cpp.o"
  "CMakeFiles/urlf_measure.dir/repeated.cpp.o.d"
  "CMakeFiles/urlf_measure.dir/session.cpp.o"
  "CMakeFiles/urlf_measure.dir/session.cpp.o.d"
  "CMakeFiles/urlf_measure.dir/testlist.cpp.o"
  "CMakeFiles/urlf_measure.dir/testlist.cpp.o.d"
  "liburlf_measure.a"
  "liburlf_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
