
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/blockpage.cpp" "src/measure/CMakeFiles/urlf_measure.dir/blockpage.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/blockpage.cpp.o.d"
  "/root/repo/src/measure/client.cpp" "src/measure/CMakeFiles/urlf_measure.dir/client.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/client.cpp.o.d"
  "/root/repo/src/measure/mining.cpp" "src/measure/CMakeFiles/urlf_measure.dir/mining.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/mining.cpp.o.d"
  "/root/repo/src/measure/repeated.cpp" "src/measure/CMakeFiles/urlf_measure.dir/repeated.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/repeated.cpp.o.d"
  "/root/repo/src/measure/session.cpp" "src/measure/CMakeFiles/urlf_measure.dir/session.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/session.cpp.o.d"
  "/root/repo/src/measure/testlist.cpp" "src/measure/CMakeFiles/urlf_measure.dir/testlist.cpp.o" "gcc" "src/measure/CMakeFiles/urlf_measure.dir/testlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/urlf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/urlf_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/urlf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/urlf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/urlf_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
