file(REMOVE_RECURSE
  "CMakeFiles/urlf_report.dir/csv.cpp.o"
  "CMakeFiles/urlf_report.dir/csv.cpp.o.d"
  "CMakeFiles/urlf_report.dir/json.cpp.o"
  "CMakeFiles/urlf_report.dir/json.cpp.o.d"
  "CMakeFiles/urlf_report.dir/table.cpp.o"
  "CMakeFiles/urlf_report.dir/table.cpp.o.d"
  "liburlf_report.a"
  "liburlf_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
