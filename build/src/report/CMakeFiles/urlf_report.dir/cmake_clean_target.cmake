file(REMOVE_RECURSE
  "liburlf_report.a"
)
