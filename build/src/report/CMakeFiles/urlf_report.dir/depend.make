# Empty dependencies file for urlf_report.
# This may be replaced when dependencies are built.
