file(REMOVE_RECURSE
  "CMakeFiles/urlf_simnet.dir/hosting.cpp.o"
  "CMakeFiles/urlf_simnet.dir/hosting.cpp.o.d"
  "CMakeFiles/urlf_simnet.dir/origin_server.cpp.o"
  "CMakeFiles/urlf_simnet.dir/origin_server.cpp.o.d"
  "CMakeFiles/urlf_simnet.dir/transport.cpp.o"
  "CMakeFiles/urlf_simnet.dir/transport.cpp.o.d"
  "CMakeFiles/urlf_simnet.dir/world.cpp.o"
  "CMakeFiles/urlf_simnet.dir/world.cpp.o.d"
  "liburlf_simnet.a"
  "liburlf_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
