file(REMOVE_RECURSE
  "liburlf_simnet.a"
)
