# Empty dependencies file for urlf_simnet.
# This may be replaced when dependencies are built.
