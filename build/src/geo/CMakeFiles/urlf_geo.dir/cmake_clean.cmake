file(REMOVE_RECURSE
  "CMakeFiles/urlf_geo.dir/geodb.cpp.o"
  "CMakeFiles/urlf_geo.dir/geodb.cpp.o.d"
  "liburlf_geo.a"
  "liburlf_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
