file(REMOVE_RECURSE
  "liburlf_geo.a"
)
