
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geodb.cpp" "src/geo/CMakeFiles/urlf_geo.dir/geodb.cpp.o" "gcc" "src/geo/CMakeFiles/urlf_geo.dir/geodb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
