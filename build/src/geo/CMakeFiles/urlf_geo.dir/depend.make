# Empty dependencies file for urlf_geo.
# This may be replaced when dependencies are built.
