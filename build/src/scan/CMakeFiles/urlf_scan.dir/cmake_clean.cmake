file(REMOVE_RECURSE
  "CMakeFiles/urlf_scan.dir/banner_index.cpp.o"
  "CMakeFiles/urlf_scan.dir/banner_index.cpp.o.d"
  "CMakeFiles/urlf_scan.dir/serialize.cpp.o"
  "CMakeFiles/urlf_scan.dir/serialize.cpp.o.d"
  "liburlf_scan.a"
  "liburlf_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
