
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/banner_index.cpp" "src/scan/CMakeFiles/urlf_scan.dir/banner_index.cpp.o" "gcc" "src/scan/CMakeFiles/urlf_scan.dir/banner_index.cpp.o.d"
  "/root/repo/src/scan/serialize.cpp" "src/scan/CMakeFiles/urlf_scan.dir/serialize.cpp.o" "gcc" "src/scan/CMakeFiles/urlf_scan.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/urlf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/urlf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/urlf_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/urlf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
