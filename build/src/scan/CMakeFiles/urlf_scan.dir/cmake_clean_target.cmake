file(REMOVE_RECURSE
  "liburlf_scan.a"
)
