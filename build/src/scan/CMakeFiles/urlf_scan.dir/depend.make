# Empty dependencies file for urlf_scan.
# This may be replaced when dependencies are built.
