# Empty dependencies file for urlf_core.
# This may be replaced when dependencies are built.
