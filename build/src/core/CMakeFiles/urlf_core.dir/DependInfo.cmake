
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/characterizer.cpp" "src/core/CMakeFiles/urlf_core.dir/characterizer.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/characterizer.cpp.o.d"
  "/root/repo/src/core/confirmer.cpp" "src/core/CMakeFiles/urlf_core.dir/confirmer.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/confirmer.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/urlf_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/identifier.cpp" "src/core/CMakeFiles/urlf_core.dir/identifier.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/identifier.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/urlf_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/urlf_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/proxy_detect.cpp" "src/core/CMakeFiles/urlf_core.dir/proxy_detect.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/proxy_detect.cpp.o.d"
  "/root/repo/src/core/scout.cpp" "src/core/CMakeFiles/urlf_core.dir/scout.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/scout.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/urlf_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/urlf_core.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/urlf_report.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/urlf_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/urlf_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/urlf_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/urlf_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/urlf_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/urlf_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/urlf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/urlf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/urlf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
