file(REMOVE_RECURSE
  "CMakeFiles/urlf_core.dir/characterizer.cpp.o"
  "CMakeFiles/urlf_core.dir/characterizer.cpp.o.d"
  "CMakeFiles/urlf_core.dir/confirmer.cpp.o"
  "CMakeFiles/urlf_core.dir/confirmer.cpp.o.d"
  "CMakeFiles/urlf_core.dir/evaluation.cpp.o"
  "CMakeFiles/urlf_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/urlf_core.dir/identifier.cpp.o"
  "CMakeFiles/urlf_core.dir/identifier.cpp.o.d"
  "CMakeFiles/urlf_core.dir/monitor.cpp.o"
  "CMakeFiles/urlf_core.dir/monitor.cpp.o.d"
  "CMakeFiles/urlf_core.dir/profiler.cpp.o"
  "CMakeFiles/urlf_core.dir/profiler.cpp.o.d"
  "CMakeFiles/urlf_core.dir/proxy_detect.cpp.o"
  "CMakeFiles/urlf_core.dir/proxy_detect.cpp.o.d"
  "CMakeFiles/urlf_core.dir/scout.cpp.o"
  "CMakeFiles/urlf_core.dir/scout.cpp.o.d"
  "CMakeFiles/urlf_core.dir/serialize.cpp.o"
  "CMakeFiles/urlf_core.dir/serialize.cpp.o.d"
  "liburlf_core.a"
  "liburlf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
