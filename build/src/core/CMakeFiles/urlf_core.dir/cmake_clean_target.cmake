file(REMOVE_RECURSE
  "liburlf_core.a"
)
