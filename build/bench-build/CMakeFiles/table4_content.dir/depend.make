# Empty dependencies file for table4_content.
# This may be replaced when dependencies are built.
