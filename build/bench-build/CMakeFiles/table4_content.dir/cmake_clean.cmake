file(REMOVE_RECURSE
  "../bench/table4_content"
  "../bench/table4_content.pdb"
  "CMakeFiles/table4_content.dir/table4_content.cpp.o"
  "CMakeFiles/table4_content.dir/table4_content.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
