file(REMOVE_RECURSE
  "../bench/monitor_longitudinal"
  "../bench/monitor_longitudinal.pdb"
  "CMakeFiles/monitor_longitudinal.dir/monitor_longitudinal.cpp.o"
  "CMakeFiles/monitor_longitudinal.dir/monitor_longitudinal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
