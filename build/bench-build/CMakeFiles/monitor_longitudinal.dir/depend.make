# Empty dependencies file for monitor_longitudinal.
# This may be replaced when dependencies are built.
