file(REMOVE_RECURSE
  "../bench/table5_evasion"
  "../bench/table5_evasion.pdb"
  "CMakeFiles/table5_evasion.dir/table5_evasion.cpp.o"
  "CMakeFiles/table5_evasion.dir/table5_evasion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
