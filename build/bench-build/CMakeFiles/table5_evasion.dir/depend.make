# Empty dependencies file for table5_evasion.
# This may be replaced when dependencies are built.
