file(REMOVE_RECURSE
  "../bench/census_vs_shodan"
  "../bench/census_vs_shodan.pdb"
  "CMakeFiles/census_vs_shodan.dir/census_vs_shodan.cpp.o"
  "CMakeFiles/census_vs_shodan.dir/census_vs_shodan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_vs_shodan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
