# Empty compiler generated dependencies file for census_vs_shodan.
# This may be replaced when dependencies are built.
