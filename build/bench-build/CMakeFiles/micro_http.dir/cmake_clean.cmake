file(REMOVE_RECURSE
  "../bench/micro_http"
  "../bench/micro_http.pdb"
  "CMakeFiles/micro_http.dir/micro_http.cpp.o"
  "CMakeFiles/micro_http.dir/micro_http.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
