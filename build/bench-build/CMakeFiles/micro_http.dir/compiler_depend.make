# Empty compiler generated dependencies file for micro_http.
# This may be replaced when dependencies are built.
