file(REMOVE_RECURSE
  "../bench/micro_serialize"
  "../bench/micro_serialize.pdb"
  "CMakeFiles/micro_serialize.dir/micro_serialize.cpp.o"
  "CMakeFiles/micro_serialize.dir/micro_serialize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
