# Empty dependencies file for micro_serialize.
# This may be replaced when dependencies are built.
