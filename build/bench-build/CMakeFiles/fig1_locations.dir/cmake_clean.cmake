file(REMOVE_RECURSE
  "../bench/fig1_locations"
  "../bench/fig1_locations.pdb"
  "CMakeFiles/fig1_locations.dir/fig1_locations.cpp.o"
  "CMakeFiles/fig1_locations.dir/fig1_locations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
