# Empty compiler generated dependencies file for fig1_locations.
# This may be replaced when dependencies are built.
