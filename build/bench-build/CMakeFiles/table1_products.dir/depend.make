# Empty dependencies file for table1_products.
# This may be replaced when dependencies are built.
