file(REMOVE_RECURSE
  "../bench/table1_products"
  "../bench/table1_products.pdb"
  "CMakeFiles/table1_products.dir/table1_products.cpp.o"
  "CMakeFiles/table1_products.dir/table1_products.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
