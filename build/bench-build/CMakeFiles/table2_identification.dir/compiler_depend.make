# Empty compiler generated dependencies file for table2_identification.
# This may be replaced when dependencies are built.
