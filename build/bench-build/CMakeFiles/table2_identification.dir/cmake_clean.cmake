file(REMOVE_RECURSE
  "../bench/table2_identification"
  "../bench/table2_identification.pdb"
  "CMakeFiles/table2_identification.dir/table2_identification.cpp.o"
  "CMakeFiles/table2_identification.dir/table2_identification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
