# Empty dependencies file for table3_confirmation.
# This may be replaced when dependencies are built.
