file(REMOVE_RECURSE
  "../bench/table3_confirmation"
  "../bench/table3_confirmation.pdb"
  "CMakeFiles/table3_confirmation.dir/table3_confirmation.cpp.o"
  "CMakeFiles/table3_confirmation.dir/table3_confirmation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_confirmation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
