file(REMOVE_RECURSE
  "CMakeFiles/urlfsim.dir/urlfsim.cpp.o"
  "CMakeFiles/urlfsim.dir/urlfsim.cpp.o.d"
  "urlfsim"
  "urlfsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urlfsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
