# Empty dependencies file for urlfsim.
# This may be replaced when dependencies are built.
