# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(urlfsim_confirm "/root/repo/build/tools/urlfsim" "confirm" "--case" "0")
set_tests_properties(urlfsim_confirm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_identify_json "/root/repo/build/tools/urlfsim" "identify" "--json")
set_tests_properties(urlfsim_identify_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_probe "/root/repo/build/tools/urlfsim" "probe")
set_tests_properties(urlfsim_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_scout "/root/repo/build/tools/urlfsim" "scout" "--vantage" "field-etisalat" "--product" "smartfilter")
set_tests_properties(urlfsim_scout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_bad_args "/root/repo/build/tools/urlfsim" "nonsense")
set_tests_properties(urlfsim_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_export_diff "sh" "-c" "/root/repo/build/tools/urlfsim export-scan > scan_dump.json && /root/repo/build/tools/urlfsim diff scan_dump.json scan_dump.json && rm scan_dump.json")
set_tests_properties(urlfsim_export_diff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_profile "/root/repo/build/tools/urlfsim" "profile" "--vantage" "field-yemennet" "--runs" "3")
set_tests_properties(urlfsim_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_record_reanalyze "sh" "-c" "/root/repo/build/tools/urlfsim record --vantage field-etisalat > session_dump.json && /root/repo/build/tools/urlfsim reanalyze session_dump.json --mine && rm session_dump.json")
set_tests_properties(urlfsim_record_reanalyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(urlfsim_confirm_portal "/root/repo/build/tools/urlfsim" "confirm" "--case" "0" "--portal")
set_tests_properties(urlfsim_confirm_portal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
