file(REMOVE_RECURSE
  "CMakeFiles/other_censorship.dir/other_censorship.cpp.o"
  "CMakeFiles/other_censorship.dir/other_censorship.cpp.o.d"
  "other_censorship"
  "other_censorship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_censorship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
