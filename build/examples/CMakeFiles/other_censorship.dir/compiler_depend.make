# Empty compiler generated dependencies file for other_censorship.
# This may be replaced when dependencies are built.
