file(REMOVE_RECURSE
  "CMakeFiles/yemen_story.dir/yemen_story.cpp.o"
  "CMakeFiles/yemen_story.dir/yemen_story.cpp.o.d"
  "yemen_story"
  "yemen_story.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yemen_story.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
