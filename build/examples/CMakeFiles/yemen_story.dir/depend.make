# Empty dependencies file for yemen_story.
# This may be replaced when dependencies are built.
