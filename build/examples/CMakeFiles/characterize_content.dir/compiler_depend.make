# Empty compiler generated dependencies file for characterize_content.
# This may be replaced when dependencies are built.
