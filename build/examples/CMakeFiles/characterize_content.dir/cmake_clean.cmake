file(REMOVE_RECURSE
  "CMakeFiles/characterize_content.dir/characterize_content.cpp.o"
  "CMakeFiles/characterize_content.dir/characterize_content.cpp.o.d"
  "characterize_content"
  "characterize_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
