# Empty dependencies file for proxy_detect.
# This may be replaced when dependencies are built.
