file(REMOVE_RECURSE
  "CMakeFiles/proxy_detect.dir/proxy_detect.cpp.o"
  "CMakeFiles/proxy_detect.dir/proxy_detect.cpp.o.d"
  "proxy_detect"
  "proxy_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
