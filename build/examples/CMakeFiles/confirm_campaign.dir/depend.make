# Empty dependencies file for confirm_campaign.
# This may be replaced when dependencies are built.
