file(REMOVE_RECURSE
  "CMakeFiles/confirm_campaign.dir/confirm_campaign.cpp.o"
  "CMakeFiles/confirm_campaign.dir/confirm_campaign.cpp.o.d"
  "confirm_campaign"
  "confirm_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confirm_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
