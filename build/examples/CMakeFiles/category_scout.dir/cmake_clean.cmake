file(REMOVE_RECURSE
  "CMakeFiles/category_scout.dir/category_scout.cpp.o"
  "CMakeFiles/category_scout.dir/category_scout.cpp.o.d"
  "category_scout"
  "category_scout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/category_scout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
