# Empty dependencies file for category_scout.
# This may be replaced when dependencies are built.
