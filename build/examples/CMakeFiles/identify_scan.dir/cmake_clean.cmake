file(REMOVE_RECURSE
  "CMakeFiles/identify_scan.dir/identify_scan.cpp.o"
  "CMakeFiles/identify_scan.dir/identify_scan.cpp.o.d"
  "identify_scan"
  "identify_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identify_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
