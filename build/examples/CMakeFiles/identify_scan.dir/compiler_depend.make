# Empty compiler generated dependencies file for identify_scan.
# This may be replaced when dependencies are built.
