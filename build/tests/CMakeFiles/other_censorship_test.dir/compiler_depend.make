# Empty compiler generated dependencies file for other_censorship_test.
# This may be replaced when dependencies are built.
