file(REMOVE_RECURSE
  "CMakeFiles/other_censorship_test.dir/other_censorship_test.cpp.o"
  "CMakeFiles/other_censorship_test.dir/other_censorship_test.cpp.o.d"
  "other_censorship_test"
  "other_censorship_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_censorship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
