# Empty compiler generated dependencies file for random_world_test.
# This may be replaced when dependencies are built.
