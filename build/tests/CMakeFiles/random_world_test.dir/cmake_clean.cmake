file(REMOVE_RECURSE
  "CMakeFiles/random_world_test.dir/random_world_test.cpp.o"
  "CMakeFiles/random_world_test.dir/random_world_test.cpp.o.d"
  "random_world_test"
  "random_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
