# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for yemen2009_test.
