# Empty dependencies file for yemen2009_test.
# This may be replaced when dependencies are built.
