file(REMOVE_RECURSE
  "CMakeFiles/yemen2009_test.dir/yemen2009_test.cpp.o"
  "CMakeFiles/yemen2009_test.dir/yemen2009_test.cpp.o.d"
  "yemen2009_test"
  "yemen2009_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yemen2009_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
