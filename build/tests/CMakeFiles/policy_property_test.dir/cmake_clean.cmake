file(REMOVE_RECURSE
  "CMakeFiles/policy_property_test.dir/policy_property_test.cpp.o"
  "CMakeFiles/policy_property_test.dir/policy_property_test.cpp.o.d"
  "policy_property_test"
  "policy_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
