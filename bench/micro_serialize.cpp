// Micro-benchmarks for the serialization and matching layers: JSON
// dump/parse, base64, CSV, regex matchers, and time-filtered category
// lookups (google-benchmark).
#include <benchmark/benchmark.h>

#include "filters/category_db.h"
#include "fingerprint/matcher.h"
#include "report/csv.h"
#include "report/json.h"
#include "scan/serialize.h"
#include "scenarios/paper_world.h"
#include "util/base64.h"

namespace {

using namespace urlf;

void BM_JsonDump(benchmark::State& state) {
  report::Json doc = report::Json::object();
  for (int i = 0; i < state.range(0); ++i) {
    report::Json item = report::Json::object();
    item["index"] = report::Json::number(std::int64_t{i});
    item["name"] = report::Json::string("installation-" + std::to_string(i));
    item["country"] = report::Json::string("AE");
    doc["key" + std::to_string(i)] = std::move(item);
  }
  for (auto _ : state) {
    auto text = doc.dump();
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_JsonDump)->Arg(10)->Arg(100)->Arg(1000);

void BM_JsonParse(benchmark::State& state) {
  report::Json doc = report::Json::object();
  for (int i = 0; i < state.range(0); ++i)
    doc["key" + std::to_string(i)] =
        report::Json::string("value with \"escapes\" and text " +
                             std::to_string(i));
  const std::string text = doc.dump();
  for (auto _ : state) {
    auto parsed = report::Json::parse(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JsonParse)->Arg(10)->Arg(100)->Arg(1000);

void BM_Base64Roundtrip(benchmark::State& state) {
  std::string data(static_cast<std::size_t>(state.range(0)), '\xAB');
  for (auto _ : state) {
    auto decoded = util::base64Decode(util::base64Encode(data));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_Base64Roundtrip)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CsvDocument(benchmark::State& state) {
  std::vector<std::vector<std::string>> rows(
      static_cast<std::size_t>(state.range(0)),
      {"McAfee SmartFilter", "Saudi Arabia, KSA", "5/5", "\"confirmed\""});
  for (auto _ : state) {
    auto doc = report::csvDocument({"product", "where", "blocked", "verdict"},
                                   rows);
    benchmark::DoNotOptimize(doc);
  }
}
BENCHMARK(BM_CsvDocument)->Arg(10)->Arg(1000);

void BM_RegexMatcher(benchmark::State& state) {
  const auto matcher =
      fingerprint::Matcher::headerRegex("Via", R"(McAfee Web Gateway [\d.]+)");
  fingerprint::Observation obs;
  obs.headers.add("Via", "1.1 mwg.local (McAfee Web Gateway 7.2.0.9)");
  for (auto _ : state) {
    auto match = matcher.match(obs);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_RegexMatcher);

void BM_SubstringMatcher(benchmark::State& state) {
  const auto matcher =
      fingerprint::Matcher::headerContains("Via", "McAfee Web Gateway");
  fingerprint::Observation obs;
  obs.headers.add("Via", "1.1 mwg.local (McAfee Web Gateway 7.2.0.9)");
  for (auto _ : state) {
    auto match = matcher.match(obs);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_SubstringMatcher);

void BM_CategorizeAsOf(benchmark::State& state) {
  filters::CategoryDatabase db;
  for (int i = 0; i < state.range(0); ++i)
    db.addHost("host" + std::to_string(i) + ".example", i % 40 + 1,
               util::SimTime{i});
  const auto url = net::Url::parse("http://host7.example/page").value();
  for (auto _ : state) {
    auto categories = db.categorizeAsOf(url, util::SimTime{1000000});
    benchmark::DoNotOptimize(categories);
  }
}
BENCHMARK(BM_CategorizeAsOf)->Arg(1000)->Arg(100000);

void BM_ScanExport(benchmark::State& state) {
  scenarios::PaperWorld paper;
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  for (auto _ : state) {
    auto text = scan::exportRecords(index.records());
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_ScanExport)->Unit(benchmark::kMicrosecond);

void BM_ScanImport(benchmark::State& state) {
  scenarios::PaperWorld paper;
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  const auto text = scan::exportRecords(index.records());
  for (auto _ : state) {
    auto records = scan::importRecords(text);
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_ScanImport)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
