// Closed-loop load generator for the resident campaign server (DESIGN.md
// §4.6). Three experiments, all over the wire-format event loop:
//
//   qps        N ∈ {1,4,16,64} client threads, each with its own connection,
//              issuing query sessions back-to-back (closed loop, one
//              outstanding request per client). Reports sustained QPS and
//              p50/p99 latency per fan-in; nothing may shed (the queue is
//              sized for the burst).
//   digests    K concurrent campaign sessions racing on the worker pool;
//              every digest must equal the solo runPaperCampaign digest.
//   admission  a burst of hold sessions against a deliberately tiny server
//              (2 workers, 1 queue slot): exactly burst-3 must shed, every
//              time — admission decisions are taken synchronously at submit.
//
// Results merge into BENCH_serve.json at the repo root.
//
// Usage: serve_load [--quick] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "report/json.h"
#include "scenarios/campaign.h"
#include "serve/channel.h"
#include "serve/loop.h"
#include "serve/server.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;
using report::Json;

http::Request post(const std::string& path, const Json& body) {
  http::Request request;
  request.method = "POST";
  request.url = *net::Url::parse("http://campaigns.sim" + path);
  request.body = body.dump();
  return request;
}

/// The query workload: five global-list URLs with mixed verdicts from
/// Bayanat Al-Oula (Saudi SmartFilter).
Json queryBody() {
  Json body = Json::object();
  body["kind"] = Json::string("query");
  body["snapshot"] = Json::string("paper");
  body["vantage"] = Json::string("field-bayanat");
  body["date"] = Json::string("2013-05-06");
  Json urls = Json::array();
  for (const char* url :
       {"http://adultvideosite.com/", "http://humanrightsmonitor.org/",
        "http://mediafreedomwatch.org/", "http://freeproxyhub.com/",
        "http://lgbtvoices.org/"})
    urls.push(Json::string(url));
  body["urls"] = std::move(urls);
  return body;
}

struct QpsRow {
  std::size_t clients = 0;
  std::size_t requests = 0;
  double seconds = 0;
  double qps = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  std::uint64_t shed = 0;
};

QpsRow runQps(std::size_t clients, std::size_t itersPerClient) {
  serve::ServerConfig config;
  config.workers = 8;
  config.maxQueued = 256;  // absorb the whole closed-loop fan-in
  serve::CampaignServer server(config);
  server.addSnapshot("paper");
  serve::ServerLoop loop(server);

  const Json body = queryBody();
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};

  const auto begin = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto connection = loop.connect();
      auto& mine = latencies[c];
      mine.reserve(itersPerClient);
      for (std::size_t i = 0; i < itersPerClient; ++i) {
        const auto start = Clock::now();
        const auto response = connection->roundTrip(post("/v1/session", body));
        const auto stop = Clock::now();
        if (!response.ok() || response.value().statusCode != 200) {
          failures.fetch_add(1);
          continue;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(stop - start).count());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - begin).count();
  loop.stop();

  std::vector<double> all;
  for (const auto& mine : latencies) all.insert(all.end(), mine.begin(), mine.end());
  std::sort(all.begin(), all.end());

  QpsRow row;
  row.clients = clients;
  row.requests = all.size();
  row.seconds = seconds;
  row.qps = seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  if (!all.empty()) {
    row.p50Ms = all[all.size() / 2];
    row.p99Ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
  }
  row.shed = server.stats().admission.shed;
  if (failures.load() != 0)
    std::cerr << "serve_load: " << failures.load() << " failed queries at N="
              << clients << "\n";
  return row;
}

bool runDigestRace(std::size_t sessions, const std::string& soloDigest) {
  serve::CampaignServer server({.workers = 4, .maxQueued = sessions});
  server.addSnapshot("paper");

  Json body = Json::object();
  body["kind"] = Json::string("campaign");
  body["snapshot"] = Json::string("paper");

  std::vector<std::promise<http::Response>> slots(sessions);
  std::vector<std::future<http::Response>> futures;
  for (auto& slot : slots) futures.push_back(slot.get_future());
  for (std::size_t i = 0; i < sessions; ++i)
    server.submit(post("/v1/session", body),
                  [&slot = slots[i]](http::Response response) {
                    slot.set_value(std::move(response));
                  });

  bool equal = true;
  for (auto& future : futures) {
    const auto response = future.get();
    const auto parsed = Json::parse(response.body);
    const auto* digest = parsed ? parsed->find("digest") : nullptr;
    if (response.statusCode != 200 || digest == nullptr ||
        !digest->asString() || *digest->asString() != soloDigest)
      equal = false;
  }
  server.drain();
  return equal;
}

struct BurstResult {
  std::size_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  bool deterministic = false;
};

BurstResult runAdmissionBurst(std::size_t burst, int rounds) {
  BurstResult result;
  result.submitted = burst;
  result.deterministic = true;
  for (int round = 0; round < rounds; ++round) {
    serve::CampaignServer server({.workers = 2, .maxQueued = 1});
    std::vector<std::promise<http::Response>> slots(burst);
    std::vector<std::future<http::Response>> futures;
    for (auto& slot : slots) futures.push_back(slot.get_future());

    for (std::size_t i = 0; i < burst; ++i) {
      Json body = Json::object();
      body["kind"] = Json::string("hold");
      body["token"] = Json::string("t" + std::to_string(i));
      server.submit(post("/v1/session", body),
                    [&slot = slots[i]](http::Response response) {
                      slot.set_value(std::move(response));
                    });
    }
    for (std::size_t i = 0; i < burst; ++i)
      server.releaseHold("t" + std::to_string(i));
    for (auto& future : futures) (void)future.get();
    server.drain();

    const auto stats = server.stats().admission;
    if (round == 0) {
      result.admitted = stats.admitted;
      result.shed = stats.shed;
    } else if (stats.admitted != result.admitted ||
               stats.shed != result.shed) {
      result.deterministic = false;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: serve_load [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> fanIns =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 4, 16, 64};
  const std::size_t iters = quick ? 20 : 100;
  const std::size_t raceSessions = quick ? 2 : 4;
  const int burstRounds = quick ? 2 : 5;

  const std::string soloDigest =
      scenarios::runPaperCampaign(scenarios::CampaignOptions{}).digestHex();
  const bool digestsEqual = runDigestRace(raceSessions, soloDigest);
  std::cout << "campaign race   " << raceSessions << " sessions, digests "
            << (digestsEqual ? "identical" : "DIVERGED") << "\n";

  Json rows = Json::array();
  for (const std::size_t clients : fanIns) {
    const auto row = runQps(clients, iters);
    std::cout << "qps             N=" << clients << "  " << row.requests
              << " reqs in " << row.seconds << " s  " << row.qps
              << " qps  p50 " << row.p50Ms << " ms  p99 " << row.p99Ms
              << " ms  shed " << row.shed << "\n";
    Json entry = Json::object();
    entry["clients"] = Json::number(static_cast<std::int64_t>(row.clients));
    entry["requests"] = Json::number(static_cast<std::int64_t>(row.requests));
    entry["seconds"] = Json::number(row.seconds);
    entry["qps"] = Json::number(row.qps);
    entry["p50_ms"] = Json::number(row.p50Ms);
    entry["p99_ms"] = Json::number(row.p99Ms);
    entry["shed"] = Json::number(static_cast<std::int64_t>(row.shed));
    rows.push(std::move(entry));
  }

  const auto burst = runAdmissionBurst(quick ? 8 : 32, burstRounds);
  std::cout << "admission burst " << burst.submitted << " holds -> "
            << burst.admitted << " admitted, " << burst.shed << " shed ("
            << (burst.deterministic ? "deterministic" : "UNSTABLE") << " over "
            << burstRounds << " rounds)\n";

  Json serveJson = Json::object();
  serveJson["digests_equal"] = Json::boolean(digestsEqual);
  serveJson["race_sessions"] =
      Json::number(static_cast<std::int64_t>(raceSessions));
  serveJson["qps"] = std::move(rows);
  Json burstJson = Json::object();
  burstJson["submitted"] =
      Json::number(static_cast<std::int64_t>(burst.submitted));
  burstJson["admitted"] =
      Json::number(static_cast<std::int64_t>(burst.admitted));
  burstJson["shed"] = Json::number(static_cast<std::int64_t>(burst.shed));
  burstJson["rounds"] = Json::number(std::int64_t{burstRounds});
  burstJson["deterministic"] = Json::boolean(burst.deterministic);
  serveJson["admission_burst"] = std::move(burstJson);

  // Merge under the "serve" key, preserving anything else in the file.
  Json root = Json::object();
  {
    std::ifstream in(outPath);
    if (in) {
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      if (auto existing = Json::parse(text); existing && existing->isObject())
        root = std::move(*existing);
    }
  }
  root["serve"] = std::move(serveJson);
  std::ofstream out(outPath);
  out << root.dump(2) << "\n";
  std::cout << "wrote " << outPath << "\n";

  return digestsEqual && burst.deterministic ? 0 : 1;
}
