// Fetch→classify hot-path benchmark: per-call-regex reference vs the
// compiled pattern library (classifyBlockPage), and the tree-based reference
// category store vs the flat CategoryDatabase, on synthetic campaign-scale
// workloads. Emits BENCH_fetch.json (campaign_e2e merges its end-to-end
// numbers into the same file).
//
// Usage: micro_fetch [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "filters/category_db.h"
#include "filters/reference_category_store.h"
#include "measure/blockpage.h"
#include "measure/pattern_library.h"
#include "report/json.h"
#include "util/rng.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

template <typename Fn>
double bestOf(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double elapsed = millisSince(start);
    if (best < 0.0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::uint64_t fnv1a64(std::string_view s, std::uint64_t hash) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// --- classify workload ------------------------------------------------------

http::Response benignPage(util::Rng& rng, int i) {
  static const std::vector<std::string> kWords{
      "news",   "sports", "travel", "gateway", "filter", "proxy",
      "recipe", "forum",  "coat",   "session", "deny",   "admin"};
  std::string body = "<html><head><title>Site " + std::to_string(i) +
                     "</title></head><body>";
  const int words = 150 + static_cast<int>(rng.uniform(0, 200));
  for (int w = 0; w < words; ++w) {
    body += rng.pick(kWords);
    body += ' ';
  }
  body += "</body></html>";
  auto resp = http::Response::make(http::Status::kOk, std::move(body));
  resp.headers.set("Server", "Apache/2.2.22");
  return resp;
}

/// One synthetic fetch result: ~15% vendor block pages (spread across the
/// four products' signature shapes), the rest benign pages of varying size —
/// roughly a campaign against a censored network.
simnet::FetchResult makeResult(util::Rng& rng, int i) {
  simnet::FetchResult result;
  if (!rng.chance(0.15)) {
    result.response = benignPage(rng, i);
    return result;
  }
  switch (rng.uniform(0, 3)) {
    case 0: {  // SmartFilter: Via header on the proxied response
      auto resp = benignPage(rng, i);
      resp.statusCode = 403;
      resp.reason = "Forbidden";
      resp.headers.set("Via", "1.1 mcafee-gw (McAfee Web Gateway 7.2)");
      result.response = std::move(resp);
      break;
    }
    case 1: {  // Blue Coat: cfauth.com bounce in the redirect chain
      auto hop = http::Response::make(http::Status::kFound);
      hop.headers.set("Location",
                      "http://www.cfauth.com/?cfru=aHR0cDovL2V4YW1wbGUuY29tLw" +
                          std::to_string(i));
      result.redirectChain.push_back(std::move(hop));
      result.response = benignPage(rng, i);
      break;
    }
    case 2: {  // Netsweeper: deny redirect to webadmin on :8080
      auto hop = http::Response::make(http::Status::kFound);
      hop.headers.set("Location",
                      "http://10.4.0.2:8080/webadmin/deny.php?dpid=" +
                          std::to_string(i));
      result.redirectChain.push_back(std::move(hop));
      result.response = http::Response::make(
          http::Status::kOk,
          "<html><head><title>Web page blocked</title></head>"
          "<body>Netsweeper WebAdmin</body></html>");
      break;
    }
    default: {  // Websense: blockpage.cgi on :15871 with ws-session
      auto hop = http::Response::make(http::Status::kFound);
      hop.headers.set(
          "Location",
          "http://10.9.0.8:15871/cgi-bin/blockpage.cgi?ws-session=" +
              std::to_string(1000000 + i));
      result.redirectChain.push_back(std::move(hop));
      result.response = http::Response::make(
          http::Status::kOk,
          "<html><head><title>Websense - Access denied</title></head>"
          "<body>Blocked by policy.</body></html>");
      break;
    }
  }
  return result;
}

std::uint64_t hashMatches(
    const std::vector<std::optional<measure::BlockPageMatch>>& matches) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& match : matches) {
    if (!match) {
      h = fnv1a64("-;", h);
      continue;
    }
    h = fnv1a64(filters::toString(match->product), h);
    h = fnv1a64(match->patternName, h);
    h = fnv1a64(match->evidence, h);
    h = fnv1a64(";", h);
  }
  return h;
}

// --- categorize workload ----------------------------------------------------

/// The Deployment::intercept lookup replaced by this PR: every request
/// unions the operator's custom DB with the (update-lagged) master DB. The
/// reference side reproduces the old code shape — two std::set results
/// merged into a third per probe; the fast side reuses one CategorySet.
struct CategorizeWorkload {
  filters::ReferenceCategoryStore referenceMaster;
  filters::ReferenceCategoryStore referenceCustom;
  filters::CategoryDatabase flatMaster;
  filters::CategoryDatabase flatCustom;
  std::vector<net::Url> probes;
  std::vector<util::SimTime> cutoffs;
};

CategorizeWorkload makeCategorizeWorkload(int urls, util::Rng& rng) {
  CategorizeWorkload w;
  // Vendor databases dwarf any one test list ("Netsweeper by the numbers"),
  // so the categorized population is several times the probe count.
  const int hosts = urls * 2;
  std::vector<std::string> hostnames;
  hostnames.reserve(static_cast<std::size_t>(hosts));
  for (int i = 0; i < hosts; ++i)
    hostnames.push_back("site" + std::to_string(i) + ".example" +
                        std::to_string(i % 7) + ".com");

  // Master DB: ~60% of the hosts categorized (1-4 categories each,
  // staggered addedAt) plus exact-URL entries.
  for (int i = 0; i < hosts; ++i) {
    if (!rng.chance(0.6)) continue;
    const int categories = 1 + static_cast<int>(rng.uniform(0, 3));
    for (int c = 0; c < categories; ++c) {
      const auto category = static_cast<filters::CategoryId>(rng.uniform(1, 90));
      const util::SimTime addedAt{
          static_cast<std::int64_t>(rng.uniform(0, 10000))};
      w.referenceMaster.addHost(hostnames[static_cast<std::size_t>(i)],
                                category, addedAt);
      w.flatMaster.addHost(hostnames[static_cast<std::size_t>(i)], category,
                           addedAt);
    }
    if (rng.chance(0.1)) {
      const auto url = net::Url::parse(
          "http://" + hostnames[static_cast<std::size_t>(i)] + "/page.html");
      const auto category = static_cast<filters::CategoryId>(rng.uniform(1, 90));
      const util::SimTime addedAt{
          static_cast<std::int64_t>(rng.uniform(0, 10000))};
      w.referenceMaster.addUrl(*url, category, addedAt);
      w.flatMaster.addUrl(*url, category, addedAt);
    }
  }

  // Custom DB: the operator's local overrides — small, but consulted on
  // every request.
  for (int i = 0; i < hosts; i += 199) {
    const auto category = static_cast<filters::CategoryId>(rng.uniform(1, 90));
    w.referenceCustom.addHost(hostnames[static_cast<std::size_t>(i)], category);
    w.flatCustom.addHost(hostnames[static_cast<std::size_t>(i)], category);
  }

  // Probe URLs: a mix of categorized hosts, www. variants (registrable-domain
  // fallback), exact URLs, and misses, each with its own cutoff.
  w.probes.reserve(static_cast<std::size_t>(urls));
  w.cutoffs.reserve(static_cast<std::size_t>(urls));
  for (int i = 0; i < urls; ++i) {
    const auto& host = hostnames[rng.index(hostnames.size())];
    std::string text = "http://";
    switch (rng.uniform(0, 3)) {
      case 0: text += "www." + host + "/"; break;
      case 1: text += host + "/page.html"; break;
      case 2: text += "miss" + std::to_string(i) + ".nowhere.net/"; break;
      default: text += host + "/"; break;
    }
    w.probes.push_back(*net::Url::parse(text));
    w.cutoffs.push_back(
        util::SimTime{static_cast<std::int64_t>(rng.uniform(0, 12000))});
  }
  return w;
}

// --- one size ---------------------------------------------------------------

report::Json benchAtSize(int urls, int reps) {
  report::Json out = report::Json::object();
  out["urls"] = report::Json::number(std::int64_t{urls});

  // --- classifyBlockPage: reference vs compiled -------------------------
  util::Rng rng(20130814u + static_cast<std::uint64_t>(urls));
  std::vector<simnet::FetchResult> results;
  results.reserve(static_cast<std::size_t>(urls));
  for (int i = 0; i < urls; ++i) results.push_back(makeResult(rng, i));

  const auto& patterns = measure::builtinBlockPagePatterns();
  std::vector<std::optional<measure::BlockPageMatch>> referenceMatches(
      results.size());
  const double classifyReferenceMs = bestOf(reps, [&] {
    for (std::size_t i = 0; i < results.size(); ++i)
      referenceMatches[i] =
          measure::classifyBlockPageReference(results[i], patterns);
  });

  std::vector<std::optional<measure::BlockPageMatch>> fastMatches(
      results.size());
  const double classifyFastMs = bestOf(reps, [&] {
    for (std::size_t i = 0; i < results.size(); ++i)
      fastMatches[i] = measure::classifyBlockPage(results[i]);
  });

  int blocked = 0;
  for (const auto& match : fastMatches)
    if (match) ++blocked;
  out["classify_blocked"] = report::Json::number(std::int64_t{blocked});
  out["classify_reference_ms"] = report::Json::number(classifyReferenceMs);
  out["classify_fast_ms"] = report::Json::number(classifyFastMs);
  out["classify_speedup"] =
      report::Json::number(classifyReferenceMs / classifyFastMs);
  out["classify_reference_hash"] =
      report::Json::string(hex(hashMatches(referenceMatches)));
  out["classify_fast_hash"] =
      report::Json::string(hex(hashMatches(fastMatches)));
  out["classify_hash_equal"] = report::Json::boolean(
      hashMatches(referenceMatches) == hashMatches(fastMatches));

  // --- effective categories (the per-intercept lookup): tree vs flat ----
  auto workload = makeCategorizeWorkload(urls, rng);

  std::uint64_t referenceHash = 0;
  const double categorizeReferenceMs = bestOf(reps, [&] {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < workload.probes.size(); ++i) {
      // Old Deployment::effectiveCategories shape: two set-valued lookups
      // merged into a third set, all freshly allocated per request.
      std::set<filters::CategoryId> categories =
          workload.referenceCustom.categorize(workload.probes[i]);
      const auto synced = workload.referenceMaster.categorizeAsOf(
          workload.probes[i], workload.cutoffs[i]);
      categories.insert(synced.begin(), synced.end());
      for (const auto category : categories)
        h = (h ^ static_cast<std::uint64_t>(category)) * 0x100000001B3ULL;
      h = (h ^ 0xFFu) * 0x100000001B3ULL;
    }
    referenceHash = h;
  });

  std::uint64_t fastHash = 0;
  const double categorizeFastMs = bestOf(reps, [&] {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    filters::CategorySet scratch;
    for (std::size_t i = 0; i < workload.probes.size(); ++i) {
      scratch.clear();
      workload.flatCustom.categorizeInto(workload.probes[i], scratch);
      workload.flatMaster.categorizeAsOfInto(workload.probes[i],
                                             workload.cutoffs[i], scratch);
      for (const auto category : scratch)
        h = (h ^ static_cast<std::uint64_t>(category)) * 0x100000001B3ULL;
      h = (h ^ 0xFFu) * 0x100000001B3ULL;
    }
    fastHash = h;
  });

  out["categorize_entries"] = report::Json::number(static_cast<std::int64_t>(
      workload.flatMaster.entryCount() + workload.flatCustom.entryCount()));
  out["categorize_reference_ms"] = report::Json::number(categorizeReferenceMs);
  out["categorize_fast_ms"] = report::Json::number(categorizeFastMs);
  out["categorize_speedup"] =
      report::Json::number(categorizeReferenceMs / categorizeFastMs);
  out["categorize_reference_hash"] = report::Json::string(hex(referenceHash));
  out["categorize_fast_hash"] = report::Json::string(hex(fastHash));
  out["categorize_hash_equal"] =
      report::Json::boolean(referenceHash == fastHash);

  std::cerr << "urls=" << urls << " classify ref=" << classifyReferenceMs
            << "ms fast=" << classifyFastMs << "ms ("
            << classifyReferenceMs / classifyFastMs
            << "x)  categorize ref=" << categorizeReferenceMs
            << "ms fast=" << categorizeFastMs << "ms ("
            << categorizeReferenceMs / categorizeFastMs << "x)\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_fetch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: micro_fetch [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<int> sizes =
      quick ? std::vector<int>{1000} : std::vector<int>{1000, 5000, 20000};
  const int reps = quick ? 1 : 3;

  report::Json root = report::Json::object();
  root["bench"] = report::Json::string("micro_fetch");
  root["reps"] = report::Json::number(std::int64_t{reps});

  report::Json runs = report::Json::array();
  for (const int urls : sizes) runs.push(benchAtSize(urls, reps));
  root["runs"] = std::move(runs);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "micro_fetch: cannot open " << outPath << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root.dump(2) << "\n";
  return 0;
}
