// Quantifies Table 5 ("methods, limitations, and evasionary tactics"): for
// each vendor/operator evasion tactic, rebuilds the world with that tactic
// enabled and reports which stage of the methodology survives —
// identification (§3), validation (§3.1), and confirmation (§4).
#include <cstdio>
#include <string>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

namespace {

struct StageOutcomes {
  std::size_t candidates = 0;      ///< keyword-search hits, all products
  std::size_t validated = 0;       ///< fingerprint-validated installations
  bool confirmedSmartFilter = false;  ///< SmartFilter/Etisalat case study
  bool confirmedNetsweeper = false;   ///< Netsweeper/Ooredoo case study
  int smartFilterBlocked = 0;
  int netsweeperBlocked = 0;
};

StageOutcomes evaluate(const urlf::scenarios::PaperWorldOptions& options,
                       bool rotateSubmitterIdentities = false) {
  using namespace urlf;

  scenarios::PaperWorld paper(scenarios::kPaperSeed, options);
  auto& world = paper.world();

  const auto geo = world.buildGeoDatabase(options.geoErrorRate);
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(), geo,
                              whois);

  StageOutcomes outcomes;
  for (const auto product : filters::allProducts()) {
    outcomes.candidates += identifier.locateCandidates(product).size();
    outcomes.validated += identifier.identify(product).size();
  }

  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());
  for (const auto& caseStudy : paper.caseStudies()) {
    const auto& config = caseStudy.config;
    const bool isSmartFilterEtisalat =
        config.product == filters::ProductKind::kSmartFilter &&
        config.ispName == "Etisalat" && config.categoryName == "Anonymizers";
    const bool isNetsweeperOoredoo =
        config.product == filters::ProductKind::kNetsweeper &&
        config.ispName == "Ooredoo";
    if (!isSmartFilterEtisalat && !isNetsweeperOoredoo) continue;

    scenarios::advanceClockTo(world, caseStudy.startDate);
    auto runConfig = config;
    if (rotateSubmitterIdentities) {
      // §6.2 counter-evasion: fresh webmail identities per submission.
      runConfig.submitterPool = {"alias1@webmail.example",
                                 "alias2@webmail.example",
                                 "alias3@webmail.example"};
    }
    const auto result = confirmer.run(runConfig);
    if (isSmartFilterEtisalat) {
      outcomes.confirmedSmartFilter = result.confirmed;
      outcomes.smartFilterBlocked = result.submittedBlocked;
    } else {
      outcomes.confirmedNetsweeper = result.confirmed;
      outcomes.netsweeperBlocked = result.submittedBlocked;
    }
  }
  return outcomes;
}

}  // namespace

int main() {
  using namespace urlf;

  struct Tactic {
    const char* name;
    const char* paperRow;
    scenarios::PaperWorldOptions options;
    bool rotateIdentities = false;
  };
  const Tactic tactics[] = {
      {"(baseline: no evasion)", "-", {}, false},
      {"Hide devices from external access",
       "evades: identify installations (sec 3.1)",
       {.hideExternalSurfaces = true},
       false},
      {"Remove product evidence from headers/pages",
       "evades: validate installations (sec 3.1)",
       {.stripBranding = true},
       false},
      {"Identify and disregard our submissions",
       "evades: confirm censorship (sec 4)",
       {.disregardSubmitter = true},
       false},
      {"  + counter: rotate submitter identities",
       "counter-evasion (sec 6.2)",
       {.disregardSubmitter = true},
       true},
  };

  std::printf("%s",
              report::sectionBanner(
                  "Table 5: Evasion tactics vs. methodology stages (ablation)")
                  .c_str());

  report::TextTable table({"Evasion tactic", "Keyword candidates",
                           "Validated installs", "SmartFilter/Etisalat",
                           "Netsweeper/Ooredoo", "Paper's assessment"});
  for (const auto& tactic : tactics) {
    const auto outcome = evaluate(tactic.options, tactic.rotateIdentities);
    auto confirmCell = [](bool confirmed, int blocked) {
      return std::string(confirmed ? "confirmed" : "NOT confirmed") + " (" +
             std::to_string(blocked) + " blocked)";
    };
    table.addRow({tactic.name, std::to_string(outcome.candidates),
                  std::to_string(outcome.validated),
                  confirmCell(outcome.confirmedSmartFilter,
                              outcome.smartFilterBlocked),
                  confirmCell(outcome.confirmedNetsweeper,
                              outcome.netsweeperBlocked),
                  tactic.paperRow});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nNote how the stages fail independently (sec 6): hiding devices kills\n"
      "identification but NOT confirmation; stripping branding kills\n"
      "validation and block-page attribution; disregarding submissions kills\n"
      "confirmation but identification still works.\n");
  return 0;
}
