// Quantifies Table 5 ("methods, limitations, and evasionary tactics"): for
// each vendor/operator evasion tactic, rebuilds the world with that tactic
// enabled and reports which stage of the methodology survives —
// identification (§3), validation (§3.1), and confirmation (§4).
#include <cstdio>
#include <string>
#include <vector>

#include "core/confirmer.h"
#include "core/identifier.h"
#include "report/table.h"
#include "scenarios/paper_world.h"
#include "simnet/origin_server.h"
#include "simnet/packet_filter.h"
#include "simnet/transport.h"
#include "simnet/world.h"

namespace {

struct StageOutcomes {
  std::size_t candidates = 0;      ///< keyword-search hits, all products
  std::size_t validated = 0;       ///< fingerprint-validated installations
  bool confirmedSmartFilter = false;  ///< SmartFilter/Etisalat case study
  bool confirmedNetsweeper = false;   ///< Netsweeper/Ooredoo case study
  int smartFilterBlocked = 0;
  int netsweeperBlocked = 0;
};

StageOutcomes evaluate(const urlf::scenarios::PaperWorldOptions& options,
                       bool rotateSubmitterIdentities = false) {
  using namespace urlf;

  scenarios::PaperWorld paper(scenarios::kPaperSeed, options);
  auto& world = paper.world();

  const auto geo = world.buildGeoDatabase(options.geoErrorRate);
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(), geo,
                              whois);

  StageOutcomes outcomes;
  for (const auto product : filters::allProducts()) {
    outcomes.candidates += identifier.locateCandidates(product).size();
    outcomes.validated += identifier.identify(product).size();
  }

  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());
  for (const auto& caseStudy : paper.caseStudies()) {
    const auto& config = caseStudy.config;
    const bool isSmartFilterEtisalat =
        config.product == filters::ProductKind::kSmartFilter &&
        config.ispName == "Etisalat" && config.categoryName == "Anonymizers";
    const bool isNetsweeperOoredoo =
        config.product == filters::ProductKind::kNetsweeper &&
        config.ispName == "Ooredoo";
    if (!isSmartFilterEtisalat && !isNetsweeperOoredoo) continue;

    scenarios::advanceClockTo(world, caseStudy.startDate);
    auto runConfig = config;
    if (rotateSubmitterIdentities) {
      // §6.2 counter-evasion: fresh webmail identities per submission.
      runConfig.submitterPool = {"alias1@webmail.example",
                                 "alias2@webmail.example",
                                 "alias3@webmail.example"};
    }
    const auto result = confirmer.run(runConfig);
    if (isSmartFilterEtisalat) {
      outcomes.confirmedSmartFilter = result.confirmed;
      outcomes.smartFilterBlocked = result.submittedBlocked;
    } else {
      outcomes.confirmedNetsweeper = result.confirmed;
      outcomes.netsweeperBlocked = result.submittedBlocked;
    }
  }
  return outcomes;
}

/// Client-side evasion of the packet-level mechanisms (DESIGN.md §4.8):
/// unlike the vendor tactics above, these are moves the *measured user*
/// can make against the wire-level blocking the paper's products do not
/// employ. A tiny purpose-built world keeps the two demonstrations exact.
void packetEvasionSection() {
  using namespace urlf;

  simnet::World world(20130813);
  world.createAs(64500, "TESTNET", "Testland Telecom", "TL",
                 {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24}, 16}});
  auto& isp = world.createIsp("Testland Telecom", "TL", {64500});
  const auto& field = world.createVantage("field-testland", "TL", &isp);

  const auto addSite = [&](const std::string& host, std::uint16_t port) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    server.setPage("*", std::move(page));
    const auto ip = world.allocateAddress(64500);
    world.bind(ip, port, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  };
  addSite("tls.example", 443);
  addSite("forum.example", 80);

  // An SNI filter on the TLS host and a *stateful* keyword injector whose
  // keyword lives in the URL path, so innocuous paths on the same host are
  // collateral only while the hold-down is armed.
  auto& sniFilter = world.makePacketFilter<simnet::SniFilter>(
      "tl-sni-filter", std::vector<std::string>{"tls.example"});
  auto& injector = world.makePacketFilter<simnet::RstInjector>(
      "tl-rst-injector", std::vector<std::string>{"banned-topic"},
      /*holdDownHours=*/24);
  isp.attachPacketFilter(sniFilter);
  isp.attachPacketFilter(injector);

  simnet::Transport transport(world);
  const auto describe = [](const simnet::FetchResult& result) {
    return result.ok() ? std::string("accessible")
                       : "BLOCKED (" +
                             std::string(simnet::toString(result.signature)) +
                             ")";
  };

  std::printf("%s", report::sectionBanner(
                        "Packet-level mechanisms: client-side evasion")
                        .c_str());
  report::TextTable table(
      {"Mechanism", "Probe", "Without evasion", "Evasion", "With evasion"});

  // Row 1: SNI omission fails the filter open (ESNI/ECH).
  const auto sniBlocked = transport.fetchUrl(field, "https://tls.example/");
  simnet::FetchOptions omit;
  omit.omitSni = true;
  const auto sniEvaded =
      transport.fetchUrl(field, "https://tls.example/", omit);
  table.addRow({"SNI filtering", "https://tls.example/",
                describe(sniBlocked), "omit SNI from ClientHello",
                describe(sniEvaded)});

  // Row 2: the stateful injector's hold-down makes innocuous paths on the
  // destination collateral damage — until the client waits out the window.
  const auto trigger =
      transport.fetchUrl(field, "http://forum.example/banned-topic");
  const auto collateral =
      transport.fetchUrl(field, "http://forum.example/news");
  world.clock().advanceHours(injector.holdDownHours() + 1);
  const auto pastWindow =
      transport.fetchUrl(field, "http://forum.example/news");
  table.addRow({"Stateful RST injection",
                "http://forum.example/banned-topic", describe(trigger),
                "-", "-"});
  table.addRow({"  residual hold-down (24h)", "http://forum.example/news",
                describe(collateral), "retry past the window",
                describe(pastWindow)});
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nThe SNI filter fails open when the ClientHello names no server "
      "(%llu flows\npassed); the injector's residual state killed %llu "
      "innocent flows inside the\nwindow and none after it expired.\n",
      static_cast<unsigned long long>(sniFilter.esniPassed()),
      static_cast<unsigned long long>(injector.residualKills()));
}

}  // namespace

int main() {
  using namespace urlf;

  struct Tactic {
    const char* name;
    const char* paperRow;
    scenarios::PaperWorldOptions options;
    bool rotateIdentities = false;
  };
  const Tactic tactics[] = {
      {"(baseline: no evasion)", "-", {}, false},
      {"Hide devices from external access",
       "evades: identify installations (sec 3.1)",
       {.hideExternalSurfaces = true},
       false},
      {"Remove product evidence from headers/pages",
       "evades: validate installations (sec 3.1)",
       {.stripBranding = true},
       false},
      {"Identify and disregard our submissions",
       "evades: confirm censorship (sec 4)",
       {.disregardSubmitter = true},
       false},
      {"  + counter: rotate submitter identities",
       "counter-evasion (sec 6.2)",
       {.disregardSubmitter = true},
       true},
  };

  std::printf("%s",
              report::sectionBanner(
                  "Table 5: Evasion tactics vs. methodology stages (ablation)")
                  .c_str());

  report::TextTable table({"Evasion tactic", "Keyword candidates",
                           "Validated installs", "SmartFilter/Etisalat",
                           "Netsweeper/Ooredoo", "Paper's assessment"});
  for (const auto& tactic : tactics) {
    const auto outcome = evaluate(tactic.options, tactic.rotateIdentities);
    auto confirmCell = [](bool confirmed, int blocked) {
      return std::string(confirmed ? "confirmed" : "NOT confirmed") + " (" +
             std::to_string(blocked) + " blocked)";
    };
    table.addRow({tactic.name, std::to_string(outcome.candidates),
                  std::to_string(outcome.validated),
                  confirmCell(outcome.confirmedSmartFilter,
                              outcome.smartFilterBlocked),
                  confirmCell(outcome.confirmedNetsweeper,
                              outcome.netsweeperBlocked),
                  tactic.paperRow});
  }
  std::printf("%s", table.render().c_str());

  std::printf(
      "\nNote how the stages fail independently (sec 6): hiding devices kills\n"
      "identification but NOT confirmation; stripping branding kills\n"
      "validation and block-page attribution; disregarding submissions kills\n"
      "confirmation but identification still works.\n");

  packetEvasionSection();
  return 0;
}
