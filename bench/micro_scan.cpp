// Scan→identify hot-path benchmark: linear-reference vs indexed
// BannerIndex::searchAll (the §3.1 keyword×country fan-out), serial vs
// parallel crawl and Identifier::identifyAll on RandomWorld, and the
// million-host streamed pipeline (crawlStream → ShardedBannerIndex) with
// peak-RSS accounting against a documented budget.
// Emits BENCH_scan.json so later PRs have a perf trajectory.
//
// The streamed rows run FIRST: VmHWM is monotone, so their peak-RSS column
// reflects the streaming pipeline alone, not the eager worlds built later.
//
// Usage: micro_scan [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/identifier.h"
#include "core/serialize.h"
#include "net/cctld.h"
#include "report/json.h"
#include "scan/banner_index.h"
#include "scan/serialize.h"
#include "scenarios/random_world.h"
#include "simnet/world_stream.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

/// The peak-RSS ceiling (MiB) the streamed rows must stay under — the
/// tentpole's "1M hosts within a fixed memory budget" contract. Also
/// documented in README.md and DESIGN.md §4.5.
constexpr double kPeakRssBudgetMb = 512.0;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double bestOf(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double elapsed = millisSince(start);
    if (best < 0.0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Best-of-`reps` for an A/B pair, alternating A and B within each rep so
/// both sides see the same allocator and cache state instead of whichever
/// the other side left behind. Returns {bestA, bestB}.
template <typename FnA, typename FnB>
std::pair<double, double> bestOfPaired(int reps, FnA&& a, FnB&& b) {
  double bestA = -1.0, bestB = -1.0;
  for (int r = 0; r < reps; ++r) {
    auto start = Clock::now();
    a();
    const double elapsedA = millisSince(start);
    if (bestA < 0.0 || elapsedA < bestA) bestA = elapsedA;
    start = Clock::now();
    b();
    const double elapsedB = millisSince(start);
    if (bestB < 0.0 || elapsedB < bestB) bestB = elapsedB;
  }
  return {bestA, bestB};
}

/// "VmHWM" (peak RSS) or "VmRSS" (current RSS) from /proc/self/status, in
/// MiB; -1 when unavailable (non-Linux).
double procStatusMb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) != 0) continue;
    const auto digits = line.find_first_of("0123456789");
    if (digits == std::string::npos) return -1.0;
    return std::stod(line.substr(digits)) / 1024.0;  // kB -> MiB
  }
  return -1.0;
}

std::string hexDigest(std::uint64_t value) {
  std::ostringstream out;
  out << std::hex << value;
  return out.str();
}

std::vector<scan::Query> fullFanOut() {
  std::vector<scan::Query> queries;
  for (const auto product : filters::allProducts()) {
    for (const auto& keyword : core::Identifier::shodanKeywords(product)) {
      queries.push_back({keyword, std::nullopt});
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }
  return queries;
}

core::Identifier makeIdentifier(scenarios::RandomWorld& world,
                                const scan::BannerIndex& index,
                                std::size_t threads) {
  core::IdentifierConfig config;
  config.threads = threads;
  return core::Identifier(world.world(), index,
                          fingerprint::Engine::withBuiltinSignatures(),
                          world.world().buildGeoDatabase(),
                          world.world().buildAsnDatabase(), config);
}

// --- streamed pipeline ------------------------------------------------------

simnet::ProceduralHostConfig streamConfig(std::uint64_t hosts) {
  simnet::ProceduralHostConfig config;
  config.hosts = hosts;
  config.countries = 20;
  config.baitFraction = 0.01;
  return config;
}

/// One million-host-class row: streamed generation → sharded index →
/// search/identify, with RSS columns. The world never holds the host set.
report::Json benchStreamedAtSize(std::uint64_t hosts) {
  simnet::World world(424242);
  auto stream = std::make_shared<simnet::ProceduralHostStream>(
      777, streamConfig(hosts));
  stream->announceInto(world);
  world.attachHostStream(std::move(stream));
  const auto geo = world.buildGeoDatabase();

  report::Json out = report::Json::object();
  out["hosts"] = report::Json::number(static_cast<std::int64_t>(hosts));

  auto start = Clock::now();
  const auto index = scan::crawlStream(world, geo);
  const double crawlMs = millisSince(start);
  out["crawl_stream_ms"] = report::Json::number(crawlMs);
  out["docs"] = report::Json::number(std::int64_t{index.docCount()});
  out["shards"] = report::Json::number(
      static_cast<std::int64_t>(index.shardCount()));
  out["vocabulary"] = report::Json::number(
      static_cast<std::int64_t>(index.vocabularySize()));
  out["index_mb"] = report::Json::number(
      static_cast<double>(index.memoryBytes()) / (1024.0 * 1024.0));

  // Content digest of the serialized index: any cross-machine or
  // cross-revision divergence in the streamed pipeline shows up here.
  start = Clock::now();
  const auto blob = scan::exportShardedIndex(index);
  out["export_ms"] = report::Json::number(millisSince(start));
  out["export_bytes"] = report::Json::number(
      static_cast<std::int64_t>(blob.size()));
  out["digest"] = report::Json::string(hexDigest(util::fnv1a64(blob)));

  const auto queries = fullFanOut();
  std::vector<std::uint32_t> hits;
  start = Clock::now();
  hits = index.searchAll(queries);
  out["search_all_ms"] = report::Json::number(millisSince(start));
  out["search_all_hits"] = report::Json::number(
      static_cast<std::int64_t>(hits.size()));

  const core::Identifier identifier(
      world, index, fingerprint::Engine::withBuiltinSignatures(), geo,
      world.buildAsnDatabase());
  start = Clock::now();
  const auto found = identifier.identifyAll();
  out["identify_all_ms"] = report::Json::number(millisSince(start));
  std::size_t installations = 0;
  for (const auto& [product, list] : found) installations += list.size();
  out["installations"] = report::Json::number(
      static_cast<std::int64_t>(installations));

  out["peak_rss_mb"] = report::Json::number(procStatusMb("VmHWM"));
  out["rss_now_mb"] = report::Json::number(procStatusMb("VmRSS"));

  std::cerr << "streamed hosts=" << hosts << " docs=" << index.docCount()
            << " crawl=" << crawlMs << "ms index=" << out["index_mb"].dump()
            << "MB peakRSS=" << out["peak_rss_mb"].dump() << "MB\n";
  return out;
}

/// Streamed ≡ eager spot-check at a size where the eager twin fits easily:
/// the property suite proves the equivalence per commit; this records it in
/// the benchmark artifact alongside the large rows that rely on it.
report::Json streamedReferenceCheck(std::uint64_t hosts) {
  const auto config = streamConfig(hosts);

  simnet::World streamedWorld(515151);
  auto stream = std::make_shared<simnet::ProceduralHostStream>(777, config);
  stream->announceInto(streamedWorld);
  streamedWorld.attachHostStream(stream);
  const auto geoStreamed = streamedWorld.buildGeoDatabase();
  const auto sharded = scan::crawlStream(streamedWorld, geoStreamed);

  simnet::World eagerWorld(515151);
  stream->announceInto(eagerWorld);
  stream->materializeInto(eagerWorld);
  const auto geoEager = eagerWorld.buildGeoDatabase();
  scan::BannerIndex reference;
  reference.crawl(eagerWorld, geoEager);

  std::vector<scan::BannerRecord> fetched;
  fetched.reserve(sharded.docCount());
  for (std::uint32_t doc = 0; doc < sharded.docCount(); ++doc)
    fetched.push_back(sharded.fetchRecord(doc));
  const bool recordsEqual =
      sharded.docCount() == reference.size() &&
      scan::exportRecords(fetched, 0) == scan::exportRecords(reference.records(), 0);

  const auto queries = fullFanOut();
  const auto shardedDocs = sharded.searchAll(queries);
  const auto referenceHits = reference.searchAll(queries);
  bool searchEqual = shardedDocs.size() == referenceHits.size();
  for (std::size_t i = 0; searchEqual && i < shardedDocs.size(); ++i) {
    const auto surface = sharded.surface(shardedDocs[i]);
    searchEqual = surface.ip.value() == referenceHits[i]->ip.value() &&
                  surface.port == referenceHits[i]->port;
  }

  const core::Identifier viaStream(
      streamedWorld, sharded, fingerprint::Engine::withBuiltinSignatures(),
      geoStreamed, streamedWorld.buildAsnDatabase());
  const core::Identifier viaEager(
      eagerWorld, reference, fingerprint::Engine::withBuiltinSignatures(),
      geoEager, eagerWorld.buildAsnDatabase());
  const bool identifyEqual =
      core::toJson(viaStream.identifyAll()).dump() ==
      core::toJson(viaEager.identifyAll()).dump();

  report::Json out = report::Json::object();
  out["hosts"] = report::Json::number(static_cast<std::int64_t>(hosts));
  out["records_equal"] = report::Json::boolean(recordsEqual);
  out["search_results_equal"] = report::Json::boolean(searchEqual);
  out["identify_results_identical"] = report::Json::boolean(identifyEqual);
  std::cerr << "streamed-vs-eager check hosts=" << hosts
            << " records=" << (recordsEqual ? "equal" : "DIFFER")
            << " search=" << (searchEqual ? "equal" : "DIFFER")
            << " identify=" << (identifyEqual ? "equal" : "DIFFER") << "\n";
  return out;
}

// --- eager pipeline ---------------------------------------------------------

report::Json benchAtSize(int hosts, int reps) {
  scenarios::RandomWorldConfig config;
  config.countries = 30;
  config.decoys = hosts;
  config.contentSites = 50;
  scenarios::RandomWorld world(424242, config);
  const auto geo = world.world().buildGeoDatabase();

  report::Json out = report::Json::object();
  out["hosts"] = report::Json::number(std::int64_t{hosts});

  // --- crawl: serial vs parallel (identical index either way) ------------
  scan::BannerIndex index;
  const auto [crawlSerialMs, crawlParallelMs] = bestOfPaired(
      reps,
      [&] { index.crawl(world.world(), geo, 2048, /*threadLimit=*/1); },
      [&] { index.crawl(world.world(), geo, 2048, /*threadLimit=*/0); });
  out["records"] = report::Json::number(
      static_cast<std::int64_t>(index.size()));
  out["vocabulary"] = report::Json::number(
      static_cast<std::int64_t>(index.vocabularySize()));
  out["crawl_serial_ms"] = report::Json::number(crawlSerialMs);
  out["crawl_parallel_ms"] = report::Json::number(crawlParallelMs);
  out["crawl_speedup"] =
      report::Json::number(crawlSerialMs / crawlParallelMs);

  // --- searchAll: linear reference vs posting-list index -----------------
  const auto queries = fullFanOut();
  out["search_all_queries"] = report::Json::number(
      static_cast<std::int64_t>(queries.size()));

  std::vector<const scan::BannerRecord*> referenceHits;
  index.setSearchMode(scan::BannerIndex::SearchMode::kReference);
  const double searchReferenceMs =
      bestOf(reps, [&] { referenceHits = index.searchAll(queries); });

  std::vector<const scan::BannerRecord*> indexedHits;
  index.setSearchMode(scan::BannerIndex::SearchMode::kIndexed);
  const double searchIndexedMs =
      bestOf(reps, [&] { indexedHits = index.searchAll(queries); });

  out["search_all_hits"] = report::Json::number(
      static_cast<std::int64_t>(indexedHits.size()));
  out["search_all_reference_ms"] = report::Json::number(searchReferenceMs);
  out["search_all_indexed_ms"] = report::Json::number(searchIndexedMs);
  out["search_all_speedup"] =
      report::Json::number(searchReferenceMs / searchIndexedMs);
  out["search_results_equal"] =
      report::Json::boolean(referenceHits == indexedHits);

  // --- identifyAll: serial reference vs fast validation wave -------------
  const auto serialIdentifier = makeIdentifier(world, index, 1);
  const auto parallelIdentifier = makeIdentifier(world, index, 0);

  std::map<filters::ProductKind, std::vector<core::Installation>> serialRun;
  std::map<filters::ProductKind, std::vector<core::Installation>> parallelRun;
  const auto [identifySerialMs, identifyParallelMs] = bestOfPaired(
      reps, [&] { serialRun = serialIdentifier.identifyAll(); },
      [&] { parallelRun = parallelIdentifier.identifyAll(); });

  std::size_t installations = 0;
  for (const auto& [product, found] : serialRun) installations += found.size();
  out["installations"] = report::Json::number(
      static_cast<std::int64_t>(installations));
  out["identify_all_serial_ms"] = report::Json::number(identifySerialMs);
  out["identify_all_parallel_ms"] = report::Json::number(identifyParallelMs);
  out["identify_all_speedup"] =
      report::Json::number(identifySerialMs / identifyParallelMs);
  out["identify_results_identical"] = report::Json::boolean(
      core::toJson(serialRun).dump() == core::toJson(parallelRun).dump());

  std::cerr << "hosts=" << hosts << " records=" << index.size()
            << " crawl serial=" << crawlSerialMs << "ms parallel="
            << crawlParallelMs << "ms (" << crawlSerialMs / crawlParallelMs
            << "x)  searchAll ref=" << searchReferenceMs
            << "ms idx=" << searchIndexedMs << "ms ("
            << searchReferenceMs / searchIndexedMs
            << "x)  identifyAll serial=" << identifySerialMs
            << "ms parallel=" << identifyParallelMs << "ms ("
            << identifySerialMs / identifyParallelMs << "x)\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_scan.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: micro_scan [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::uint64_t> streamedSizes =
      quick ? std::vector<std::uint64_t>{100000}
            : std::vector<std::uint64_t>{100000, 1000000};
  const std::vector<int> sizes =
      quick ? std::vector<int>{1000} : std::vector<int>{1000, 5000, 20000};
  const int reps = quick ? 1 : 3;

  report::Json root = report::Json::object();
  root["bench"] = report::Json::string("micro_scan");
  root["pool_threads"] = report::Json::number(static_cast<std::int64_t>(
      urlf::util::ThreadPool::shared().threadCount()));
  root["reps"] = report::Json::number(std::int64_t{reps});
  root["peak_rss_budget_mb"] = report::Json::number(kPeakRssBudgetMb);

  // Streamed rows first: VmHWM is monotone, so this peak belongs to the
  // streaming pipeline alone.
  report::Json streamedRuns = report::Json::array();
  for (const auto hosts : streamedSizes)
    streamedRuns.push(benchStreamedAtSize(hosts));
  root["streamed_runs"] = std::move(streamedRuns);

  const double streamedPeakMb = procStatusMb("VmHWM");
  root["peak_rss_after_streamed_mb"] = report::Json::number(streamedPeakMb);
  const bool budgetOk =
      streamedPeakMb < 0.0 || streamedPeakMb <= kPeakRssBudgetMb;
  root["peak_rss_within_budget"] = report::Json::boolean(budgetOk);

  root["streamed_reference_check"] =
      streamedReferenceCheck(quick ? 5000 : 20000);

  report::Json runs = report::Json::array();
  for (const int hosts : sizes) runs.push(benchAtSize(hosts, reps));
  root["runs"] = std::move(runs);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "micro_scan: cannot open " << outPath << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root.dump(2) << "\n";

  if (!budgetOk) {
    std::cerr << "micro_scan: streamed peak RSS " << streamedPeakMb
              << " MB exceeds the " << kPeakRssBudgetMb << " MB budget\n";
    return 1;
  }
  return 0;
}
