// Scan→identify hot-path benchmark: linear-reference vs indexed
// BannerIndex::searchAll (the §3.1 keyword×country fan-out) and serial vs
// parallel Identifier::identifyAll, on RandomWorld at several host counts.
// Emits BENCH_scan.json so later PRs have a perf trajectory.
//
// Usage: micro_scan [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/identifier.h"
#include "core/serialize.h"
#include "net/cctld.h"
#include "report/json.h"
#include "scan/banner_index.h"
#include "scenarios/random_world.h"
#include "util/thread_pool.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double bestOf(int reps, Fn&& fn) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    fn();
    const double elapsed = millisSince(start);
    if (best < 0.0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::vector<scan::Query> fullFanOut() {
  std::vector<scan::Query> queries;
  for (const auto product : filters::allProducts()) {
    for (const auto& keyword : core::Identifier::shodanKeywords(product)) {
      queries.push_back({keyword, std::nullopt});
      for (const auto& country : net::allCountries())
        queries.push_back({keyword, std::string(country.alpha2)});
    }
  }
  return queries;
}

core::Identifier makeIdentifier(scenarios::RandomWorld& world,
                                const scan::BannerIndex& index,
                                std::size_t threads) {
  core::IdentifierConfig config;
  config.threads = threads;
  return core::Identifier(world.world(), index,
                          fingerprint::Engine::withBuiltinSignatures(),
                          world.world().buildGeoDatabase(),
                          world.world().buildAsnDatabase(), config);
}

report::Json benchAtSize(int hosts, int reps) {
  scenarios::RandomWorldConfig config;
  config.countries = 30;
  config.decoys = hosts;
  config.contentSites = 50;
  scenarios::RandomWorld world(424242, config);
  const auto geo = world.world().buildGeoDatabase();

  report::Json out = report::Json::object();
  out["hosts"] = report::Json::number(std::int64_t{hosts});

  // --- crawl: serial vs parallel (identical index either way) ------------
  scan::BannerIndex index;
  const double crawlSerialMs = bestOf(reps, [&] {
    index.crawl(world.world(), geo, 2048, /*threadLimit=*/1);
  });
  const double crawlParallelMs = bestOf(reps, [&] {
    index.crawl(world.world(), geo, 2048, /*threadLimit=*/0);
  });
  out["records"] = report::Json::number(
      static_cast<std::int64_t>(index.size()));
  out["vocabulary"] = report::Json::number(
      static_cast<std::int64_t>(index.vocabularySize()));
  out["crawl_serial_ms"] = report::Json::number(crawlSerialMs);
  out["crawl_parallel_ms"] = report::Json::number(crawlParallelMs);
  out["crawl_speedup"] =
      report::Json::number(crawlSerialMs / crawlParallelMs);

  // --- searchAll: linear reference vs posting-list index -----------------
  const auto queries = fullFanOut();
  out["search_all_queries"] = report::Json::number(
      static_cast<std::int64_t>(queries.size()));

  std::vector<const scan::BannerRecord*> referenceHits;
  index.setSearchMode(scan::BannerIndex::SearchMode::kReference);
  const double searchReferenceMs =
      bestOf(reps, [&] { referenceHits = index.searchAll(queries); });

  std::vector<const scan::BannerRecord*> indexedHits;
  index.setSearchMode(scan::BannerIndex::SearchMode::kIndexed);
  const double searchIndexedMs =
      bestOf(reps, [&] { indexedHits = index.searchAll(queries); });

  out["search_all_hits"] = report::Json::number(
      static_cast<std::int64_t>(indexedHits.size()));
  out["search_all_reference_ms"] = report::Json::number(searchReferenceMs);
  out["search_all_indexed_ms"] = report::Json::number(searchIndexedMs);
  out["search_all_speedup"] =
      report::Json::number(searchReferenceMs / searchIndexedMs);
  out["search_results_equal"] =
      report::Json::boolean(referenceHits == indexedHits);

  // --- identifyAll: serial vs parallel validation ------------------------
  const auto serialIdentifier = makeIdentifier(world, index, 1);
  const auto parallelIdentifier = makeIdentifier(world, index, 0);

  std::map<filters::ProductKind, std::vector<core::Installation>> serialRun;
  const double identifySerialMs =
      bestOf(reps, [&] { serialRun = serialIdentifier.identifyAll(); });
  std::map<filters::ProductKind, std::vector<core::Installation>> parallelRun;
  const double identifyParallelMs =
      bestOf(reps, [&] { parallelRun = parallelIdentifier.identifyAll(); });

  std::size_t installations = 0;
  for (const auto& [product, found] : serialRun) installations += found.size();
  out["installations"] = report::Json::number(
      static_cast<std::int64_t>(installations));
  out["identify_all_serial_ms"] = report::Json::number(identifySerialMs);
  out["identify_all_parallel_ms"] = report::Json::number(identifyParallelMs);
  out["identify_all_speedup"] =
      report::Json::number(identifySerialMs / identifyParallelMs);
  out["identify_results_identical"] = report::Json::boolean(
      core::toJson(serialRun).dump() == core::toJson(parallelRun).dump());

  std::cerr << "hosts=" << hosts << " records=" << index.size()
            << " searchAll ref=" << searchReferenceMs
            << "ms idx=" << searchIndexedMs << "ms ("
            << searchReferenceMs / searchIndexedMs
            << "x)  identifyAll serial=" << identifySerialMs
            << "ms parallel=" << identifyParallelMs << "ms ("
            << identifySerialMs / identifyParallelMs << "x)\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_scan.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: micro_scan [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<int> sizes =
      quick ? std::vector<int>{1000} : std::vector<int>{1000, 5000, 20000};
  const int reps = quick ? 1 : 3;

  report::Json root = report::Json::object();
  root["bench"] = report::Json::string("micro_scan");
  root["pool_threads"] = report::Json::number(static_cast<std::int64_t>(
      urlf::util::ThreadPool::shared().threadCount()));
  root["reps"] = report::Json::number(std::int64_t{reps});

  report::Json runs = report::Json::array();
  for (const int hosts : sizes) runs.push(benchAtSize(hosts, reps));
  root["runs"] = std::move(runs);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "micro_scan: cannot open " << outPath << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root.dump(2) << "\n";
  return 0;
}
