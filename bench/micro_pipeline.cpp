// Micro-benchmarks for the measurement-pipeline hot paths: banner search,
// fingerprint evaluation, category lookup, transport fetch, and world
// construction (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/identifier.h"
#include "filters/category_db.h"
#include "measure/blockpage.h"
#include "measure/client.h"
#include "scenarios/paper_world.h"

namespace {

using namespace urlf;

scenarios::PaperWorld& sharedPaper() {
  static scenarios::PaperWorld paper;
  return paper;
}

void BM_PaperWorldBuild(benchmark::State& state) {
  for (auto _ : state) {
    scenarios::PaperWorld paper;
    benchmark::DoNotOptimize(&paper);
  }
}
BENCHMARK(BM_PaperWorldBuild)->Unit(benchmark::kMillisecond);

void BM_BannerCrawl(benchmark::State& state) {
  auto& paper = sharedPaper();
  const auto geo = paper.world().buildGeoDatabase();
  for (auto _ : state) {
    scan::BannerIndex index;
    index.crawl(paper.world(), geo);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_BannerCrawl)->Unit(benchmark::kMicrosecond);

void BM_BannerSearch(benchmark::State& state) {
  auto& paper = sharedPaper();
  const auto geo = paper.world().buildGeoDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  for (auto _ : state) {
    auto hits = index.search({"netsweeper", std::nullopt});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_BannerSearch);

void BM_FingerprintEvaluate(benchmark::State& state) {
  const auto engine = fingerprint::Engine::withBuiltinSignatures();
  fingerprint::Observation obs;
  obs.statusCode = 302;
  obs.headers.add("Location",
                  "http://10.0.0.1:15871/cgi-bin/blockpage.cgi?ws-session=42");
  obs.headers.add("Server", "Websense Content Gateway");
  obs.title = "Websense - blocked";
  for (auto _ : state) {
    auto matches = engine.evaluate(obs);
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_FingerprintEvaluate);

void BM_CategoryDbLookup(benchmark::State& state) {
  filters::CategoryDatabase db;
  for (int i = 0; i < state.range(0); ++i)
    db.addHost("host" + std::to_string(i) + ".example.com", i % 40 + 1);
  const auto url = net::Url::parse("http://host7.example.com/page").value();
  for (auto _ : state) {
    auto categories = db.categorize(url);
    benchmark::DoNotOptimize(categories);
  }
}
BENCHMARK(BM_CategoryDbLookup)->Arg(100)->Arg(10000)->Arg(100000);

void BM_TransportFetchBlocked(benchmark::State& state) {
  auto& paper = sharedPaper();
  simnet::Transport transport(paper.world());
  const auto* vantage = paper.world().findVantage("field-etisalat");
  for (auto _ : state) {
    auto result = transport.fetchUrl(*vantage, "http://adultvideosite.com/");
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TransportFetchBlocked);

void BM_BlockPageClassify(benchmark::State& state) {
  auto& paper = sharedPaper();
  simnet::Transport transport(paper.world());
  const auto* vantage = paper.world().findVantage("field-etisalat");
  const auto result =
      transport.fetchUrl(*vantage, "http://adultvideosite.com/");
  for (auto _ : state) {
    auto match = measure::classifyBlockPage(result);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_BlockPageClassify);

void BM_IdentifyAll(benchmark::State& state) {
  auto& paper = sharedPaper();
  const auto geo = paper.world().buildGeoDatabase();
  const auto whois = paper.world().buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(paper.world(), geo);
  core::Identifier identifier(paper.world(), index,
                              fingerprint::Engine::withBuiltinSignatures(), geo,
                              whois);
  for (auto _ : state) {
    auto all = identifier.identifyAll();
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_IdentifyAll)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
