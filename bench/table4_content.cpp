// Reproduces Table 4 ("Summary of Web content blocked by URL filtering
// products"): runs the global + per-country local URL lists through the §4.1
// measurement client in each confirmed network (within 30 days of the §4
// confirmations) and marks which protected content categories each product
// blocks there.
#include <cstdio>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  auto& world = paper.world();
  core::Characterizer characterizer(world);

  struct Network {
    const char* vantage;
    const char* alpha2;
    util::CivilDate date;  ///< within 30 days of the §4 confirmation
    int runs;
  };
  const std::vector<Network> networks{
      {"field-etisalat", "AE", {2013, 5, 6}, 1},
      {"field-yemennet", "YE", {2013, 4, 1}, 3},  // repeated: Challenge 2
      {"field-du", "AE", {2013, 4, 1}, 1},
      {"field-ooredoo", "QA", {2013, 8, 26}, 1},
  };

  std::printf("%s",
              report::sectionBanner(
                  "Table 4: Summary of Web content blocked by URL filtering "
                  "products")
                  .c_str());

  std::vector<std::string> headers{"Product", "Where"};
  for (const auto& column : core::table4Categories()) headers.push_back(column);
  report::TextTable table(headers);

  for (const auto& network : networks) {
    scenarios::advanceClockTo(world, network.date);
    const auto result = characterizer.characterize(
        network.vantage, "lab-toronto", paper.globalList(),
        paper.localList(network.alpha2), network.runs);

    std::vector<std::string> row;
    row.push_back(result.attributedProduct
                      ? std::string(filters::toString(*result.attributedProduct))
                      : "(none)");
    const auto* vantage = world.findVantage(network.vantage);
    row.push_back(std::string(network.alpha2) + " (AS " +
                  std::to_string(vantage->isp->primaryAsn()) + ")");
    for (const auto& column : core::table4Categories())
      row.push_back(result.categoryBlocked(column) ? "x" : "");
    table.addRow(std::move(row));

    int tested = 0;
    int blocked = 0;
    for (const auto& [category, cell] : result.cells) {
      tested += cell.tested;
      blocked += cell.blocked;
    }
    std::printf("  %s via %s: %d URLs tested, %d blocked\n",
                result.ispName.c_str(), network.vantage, tested, blocked);
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nAll marked cells are content protected by international human "
      "rights norms\n(Article 19, Universal Declaration of Human Rights).\n");
  return 0;
}
