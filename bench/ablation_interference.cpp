// Robustness ablation for the §4.9 interference defenses: interference
// rate x quorum x pacing.
//
// A dedicated world carries one ISP with a genuine Netsweeper blockpage
// censor (ground truth), three field vantages, eight blocked and eight
// open hosts. The interference plan arms EVERY adversarial feature: probe
// detection (hide windows), rate-limit lockout, tarpitting, flaky
// enforcement, and blockpage mimicry with a pool that excludes the real
// vendor — every mimicked page is misattribution bait.
//
// Each cell runs one confirmation pass and scores it against ground truth:
// false confirmations (open host handed a blocked verdict), misattributed
// vendors (kBlocked with a product other than Netsweeper), contested and
// missed-blocked counts, and the simulated hours the defense spent. The
// headline contract: at quorum >= 2 with pacing + hedging + the scan
// cross-check, false confirmations and misattributions are BOTH zero for
// every rate <= 0.10, while the reference path (single vantage, unpaced,
// no cross-check) demonstrably misattributes at the top rate.
//
// Emits BENCH_interference.json. Everything is deterministic: same seed,
// same grid.
//
// Usage: ablation_interference [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "filters/category.h"
#include "measure/robust.h"
#include "report/json.h"
#include "simnet/interference.h"
#include "simnet/origin_server.h"
#include "simnet/world.h"
#include "util/strings.h"

namespace {

using namespace urlf;
using measure::Verdict;
using simnet::InterferenceProfile;
using simnet::MimicTemplate;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20130920;
constexpr int kHostsPerClass = 8;
constexpr int kVantages = 3;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// The genuine censor: serves the real Netsweeper blockpage template for a
/// fixed host set. Interference layers deception on top of this truth.
class VendorBlockBox : public simnet::Middlebox {
 public:
  explicit VendorBlockBox(std::set<std::string> hosts)
      : hosts_(std::move(hosts)) {}

  std::string name() const override { return "bench-netsweeper"; }

  std::optional<simnet::InterceptAction> intercept(
      http::Request& request, const simnet::InterceptContext&) override {
    if (hosts_.count(util::toLower(request.url.host())) > 0)
      return simnet::InterceptAction::respond(
          simnet::mimicResponse(MimicTemplate::kNetsweeper));
    return std::nullopt;
  }

 private:
  std::set<std::string> hosts_;
};

struct BenchWorld {
  std::unique_ptr<simnet::World> world;
  std::vector<const simnet::VantagePoint*> fields;
  const simnet::VantagePoint* lab = nullptr;
  /// Interleaved blocked/open so hide and ban windows straddle both kinds.
  std::vector<std::string> urls;
  std::set<std::string> blockedUrls;
};

BenchWorld buildWorld(double rate) {
  BenchWorld out;
  out.world = std::make_unique<simnet::World>(kSeed);
  auto& world = *out.world;

  world.createAs(64501, "TESTNET", "Testland Telecom", "TL",
                 {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24}, 16}});
  auto& isp = world.createIsp("Testland Telecom", "TL", {64501});
  for (int v = 0; v < kVantages; ++v)
    out.fields.push_back(
        &world.createVantage("field-" + std::to_string(v), "TL", &isp));
  out.lab = &world.createVantage("lab-control", "CA", nullptr);

  const auto addSite = [&](const std::string& host) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    page.body = "<h1>" + host + "</h1><p>benign content</p>";
    page.contentLabel = "benign";
    server.setPage("/", std::move(page));
    const auto ip = world.allocateAddress(64501);
    world.bind(ip, 80, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  };

  std::set<std::string> blockedHosts;
  for (int i = 0; i < kHostsPerClass; ++i) {
    const std::string blocked = "blocked" + std::to_string(i) + ".example";
    const std::string open = "open" + std::to_string(i) + ".example";
    addSite(blocked);
    addSite(open);
    blockedHosts.insert(blocked);
    out.blockedUrls.insert("http://" + blocked + "/");
    out.urls.push_back("http://" + blocked + "/");
    out.urls.push_back("http://" + open + "/");
  }
  auto& box = world.makeMiddlebox<VendorBlockBox>(std::move(blockedHosts));
  isp.attachMiddlebox(box);

  if (rate > 0.0) {
    simnet::InterferencePlan plan(kSeed ^ 0xADF1ADF1ULL);
    InterferenceProfile profile;
    profile.probeThreshold = 6;      // hide after 6 fetches/hour/vantage
    profile.probeWindowHours = 1;
    profile.hideHours = 24;
    profile.lockoutThreshold = 12;   // temp-ban after 12 fetches/hour
    profile.lockoutWindowHours = 1;
    profile.banHours = 12;
    profile.tarpitRate = rate;
    profile.flakyRate = rate;
    // Mimicry is the cheapest feature for a censor to run (a template swap,
    // no state, no collateral damage), so the profile arms it at 3x the
    // base rate.
    profile.mimicryRate = std::min(1.0, rate * 3.0);
    profile.mimicPool = {MimicTemplate::kSmartFilter, MimicTemplate::kBlueCoat,
                         MimicTemplate::kWebsense};
    plan.setDefaultProfile(profile);
    world.setInterferencePlan(plan);
  }
  return out;
}

struct CellStats {
  int falseConfirmations = 0;  ///< open host given kBlocked/kBlockedOther
  int misattributed = 0;       ///< kBlocked with a product != Netsweeper
  int contested = 0;
  int confirmedBlocked = 0;    ///< blocked host -> kBlocked(Netsweeper)
  int missedBlocked = 0;       ///< blocked host with any other verdict
  std::int64_t simHours = 0;
};

/// One grid cell. quorum == 1 && !paced is the historical reference path:
/// single vantage, no pacing, no deadline, no scan cross-check.
CellStats runCell(double rate, int quorum, bool paced) {
  auto bw = buildWorld(rate);
  measure::RobustOptions options;
  if (quorum == 1 && !paced) {
    options.mode = measure::RobustMode::kReference;
    options.quorum = 1;
  } else {
    options.mode = measure::RobustMode::kRobust;
    options.quorum = quorum;
    options.identifiedProduct = filters::ProductKind::kNetsweeper;
    if (paced) {
      options.paceBurst = 4;
      options.paceRefillPerHour = 2.0;
      options.attemptDeadlineHours = 6;
      options.hedgeAttempts = 2;
    }
  }

  const std::int64_t startHours = bw.world->now().hours();
  measure::RobustConfirmer confirmer(*bw.world, bw.fields, *bw.lab, options);
  const auto verdicts = confirmer.confirmList(bw.urls);

  CellStats stats;
  stats.simHours = bw.world->now().hours() - startHours;
  for (const auto& v : verdicts) {
    const bool truthBlocked = bw.blockedUrls.count(v.url) > 0;
    if (v.verdict == Verdict::kContested) ++stats.contested;
    if (!truthBlocked) {
      if (v.verdict == Verdict::kBlocked || v.verdict == Verdict::kBlockedOther)
        ++stats.falseConfirmations;
      continue;
    }
    if (v.verdict == Verdict::kBlocked &&
        v.product == filters::ProductKind::kNetsweeper) {
      ++stats.confirmedBlocked;
    } else {
      ++stats.missedBlocked;
      if (v.verdict == Verdict::kBlocked) ++stats.misattributed;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_interference.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
  }

  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.05, 0.10};
  const std::vector<int> quorums =
      quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 3};
  const double maxRate = rates.back();

  report::Json out = report::Json::object();
  out["bench"] = report::Json::string("ablation_interference");
  out["quick"] = report::Json::boolean(quick);
  out["seed"] = report::Json::number(static_cast<std::int64_t>(kSeed));
  out["hosts"] = report::Json::number(std::int64_t{kHostsPerClass * 2});
  out["vantages"] = report::Json::number(std::int64_t{kVantages});

  report::Json cells = report::Json::array();
  int hardenedFalseConfirmations = 0;  // quorum >= 2, paced, rate <= 0.10
  int hardenedMisattributions = 0;
  int referenceMisattributionsAtMaxRate = 0;
  int referenceFalseAtMaxRate = 0;

  for (const double rate : rates) {
    for (const int quorum : quorums) {
      for (const bool paced : {false, true}) {
        std::cerr << "ablation_interference: rate " << rate << " quorum "
                  << quorum << (paced ? " paced" : " unpaced") << "...\n";
        const auto start = Clock::now();
        const auto stats = runCell(rate, quorum, paced);
        const double elapsed = millisSince(start);

        if (quorum >= 2 && paced) {
          hardenedFalseConfirmations += stats.falseConfirmations;
          hardenedMisattributions += stats.misattributed;
        }
        if (quorum == 1 && !paced && rate == maxRate) {
          referenceMisattributionsAtMaxRate = stats.misattributed;
          referenceFalseAtMaxRate = stats.falseConfirmations;
        }

        report::Json cell = report::Json::object();
        cell["rate"] = report::Json::number(rate);
        cell["quorum"] = report::Json::number(std::int64_t{quorum});
        cell["paced"] = report::Json::boolean(paced);
        cell["mode"] = report::Json::string(
            quorum == 1 && !paced ? "reference" : "robust");
        cell["false_confirmations"] =
            report::Json::number(std::int64_t{stats.falseConfirmations});
        cell["misattributed"] =
            report::Json::number(std::int64_t{stats.misattributed});
        cell["contested"] = report::Json::number(std::int64_t{stats.contested});
        cell["confirmed_blocked"] =
            report::Json::number(std::int64_t{stats.confirmedBlocked});
        cell["missed_blocked"] =
            report::Json::number(std::int64_t{stats.missedBlocked});
        cell["sim_hours"] = report::Json::number(stats.simHours);
        cell["ms"] = report::Json::number(elapsed);
        cells.push(std::move(cell));
      }
    }
  }
  out["cells"] = std::move(cells);
  // The headline contract: the hardened configuration (quorum >= 2 with
  // pacing, hedging, and the scan cross-check) never confirms a deception
  // at any swept rate, while the reference path is demonstrably deceived.
  out["hardened_false_confirmations"] =
      report::Json::number(std::int64_t{hardenedFalseConfirmations});
  out["hardened_misattributions"] =
      report::Json::number(std::int64_t{hardenedMisattributions});
  out["reference_misattributions_at_max_rate"] =
      report::Json::number(std::int64_t{referenceMisattributionsAtMaxRate});
  out["reference_false_confirmations_at_max_rate"] =
      report::Json::number(std::int64_t{referenceFalseAtMaxRate});

  const std::string text = out.dump(2);
  std::ofstream file(outPath);
  file << text << '\n';
  std::cout << text << '\n';
  std::cerr << "ablation_interference: wrote " << outPath << '\n';

  if (hardenedFalseConfirmations != 0 || hardenedMisattributions != 0) {
    std::cerr << "ablation_interference: DECEPTION CONFIRMED under the "
                 "hardened configuration\n";
    return 1;
  }
  if (referenceMisattributionsAtMaxRate == 0) {
    std::cerr << "ablation_interference: reference path was not deceived at "
                 "the top rate — the ablation shows nothing\n";
    return 1;
  }
  return 0;
}
