// Micro-benchmarks for the HTTP substrate hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "http/header_map.h"
#include "http/html.h"
#include "http/wire.h"
#include "net/url.h"

namespace {

using namespace urlf;

void BM_UrlParse(benchmark::State& state) {
  for (auto _ : state) {
    auto url = net::Url::parse(
        "http://denypagetests.netsweeper.com:8080/category/catno/23?x=1&y=2");
    benchmark::DoNotOptimize(url);
  }
}
BENCHMARK(BM_UrlParse);

void BM_HeaderMapLookup(benchmark::State& state) {
  http::HeaderMap headers;
  for (int i = 0; i < state.range(0); ++i)
    headers.add("X-Header-" + std::to_string(i), "value-" + std::to_string(i));
  headers.add("Via", "1.1 mwg.example (McAfee Web Gateway 7.2.0.9)");
  for (auto _ : state) {
    auto value = headers.get("via");
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_HeaderMapLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_ResponseSerialize(benchmark::State& state) {
  auto resp = http::Response::make(
      http::Status::kForbidden,
      http::makePage("McAfee Web Gateway - Notification",
                     "<h1>URL Blocked</h1><p>The requested URL was blocked by "
                     "the network content policy.</p>"));
  resp.headers.add("Via", "1.1 mwg.example (McAfee Web Gateway 7.2.0.9)");
  for (auto _ : state) {
    auto wire = http::serialize(resp);
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_ResponseSerialize);

void BM_ResponseParse(benchmark::State& state) {
  auto resp = http::Response::make(
      http::Status::kForbidden,
      http::makePage("McAfee Web Gateway - Notification", "<h1>Blocked</h1>"));
  resp.headers.add("Via", "1.1 mwg.example (McAfee Web Gateway 7.2.0.9)");
  const std::string wire = http::serialize(resp);
  for (auto _ : state) {
    auto parsed = http::parseResponse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ResponseParse);

void BM_ExtractTitle(benchmark::State& state) {
  const std::string page = http::makePage(
      "Netsweeper WebAdmin - Web Page Blocked",
      std::string(static_cast<std::size_t>(state.range(0)), 'x'));
  for (auto _ : state) {
    auto title = http::extractTitle(page);
    benchmark::DoNotOptimize(title);
  }
}
BENCHMARK(BM_ExtractTitle)->Arg(128)->Arg(2048)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
