// Reproduces Table 1 ("Summary of products we consider"): the product
// registry with headquarters, description, and previously observed
// countries, plus each vendor's category-scheme size in this build.
#include <cstdio>

#include "filters/category.h"
#include "report/table.h"

namespace {

const char* previouslyObserved(urlf::filters::ProductKind kind) {
  using PK = urlf::filters::ProductKind;
  switch (kind) {
    case PK::kBlueCoat:
      return "Kuwait, Burma, Egypt, Qatar, Saudi Arabia, Syria, UAE";
    case PK::kSmartFilter:
      return "Kuwait, Bahrain, Iran, Saudi Arabia, Oman, Tunisia, UAE";
    case PK::kNetsweeper:
      return "Qatar, UAE, Yemen";
    case PK::kWebsense:
      return "Yemen (prior to 2009)";
  }
  return "";
}

}  // namespace

int main() {
  using namespace urlf;

  std::printf("%s",
              report::sectionBanner("Table 1: Summary of products we consider")
                  .c_str());

  report::TextTable table({"Company", "Headquarters", "Product description",
                           "Previously observed", "Categories modeled"});
  for (const auto product : filters::allProducts()) {
    table.addRow({std::string(filters::vendorCompany(product)),
                  std::string(filters::vendorHeadquarters(product)),
                  std::string(filters::productDescription(product)),
                  previouslyObserved(product),
                  std::to_string(filters::schemeFor(product).size())});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
