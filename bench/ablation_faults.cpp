// Fault-rate x retry-budget ablation: how much substrate unreliability
// (Challenge 2, §4.4 "inconsistent blocking") can the §4 confirmation
// methodology absorb before Table 3 verdicts flip?
//
// For each (per-process fault rate, retry budget) cell a fresh PaperWorld
// is built with a seeded simnet::FaultPlan and all ten case studies run
// chronologically. The verdict vector is compared against the fault-free
// baseline; the flip point per budget is the smallest swept rate whose
// vector differs. Everything is deterministic: same seed, same table.
//
// Emits BENCH_faults.json so later PRs can track the stability envelope.
//
// Usage: ablation_faults [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/confirmer.h"
#include "report/json.h"
#include "scenarios/paper_world.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One case study's outcome, compressed for vector comparison.
struct StudyOutcome {
  bool confirmed = false;
  int controlBlocked = 0;
};

/// Run all ten Table 3 case studies on a fresh world with the given fault
/// rate, every fetch carrying the given retry budget.
std::vector<StudyOutcome> runStudies(double faultRate, int retryBudget) {
  scenarios::PaperWorldOptions options;
  options.faultRate = faultRate;
  scenarios::PaperWorld paper(scenarios::kPaperSeed, options);
  core::Confirmer confirmer(paper.world(), paper.hosting(),
                            paper.vendorSet());

  simnet::RetryPolicy retry = simnet::RetryPolicy::attempts(retryBudget);
  // The ablation varies the budget alone, so every injected fault kind must
  // be retryable — otherwise connect failures bypass the budget entirely.
  retry.retryOnConnectFailure = true;

  std::vector<StudyOutcome> outcomes;
  for (const auto& caseStudy : paper.caseStudies()) {
    scenarios::advanceClockTo(paper.world(), caseStudy.startDate);
    auto config = caseStudy.config;
    config.fetchOptions.retry = retry;
    const auto result = confirmer.run(config);
    outcomes.push_back({result.confirmed, result.controlBlocked});
  }
  return outcomes;
}

std::string verdictString(const std::vector<StudyOutcome>& outcomes) {
  std::string text;
  for (const auto& outcome : outcomes) text += outcome.confirmed ? 'y' : 'n';
  return text;
}

int countFlips(const std::vector<StudyOutcome>& baseline,
               const std::vector<StudyOutcome>& observed) {
  int flips = 0;
  for (std::size_t i = 0; i < baseline.size(); ++i)
    if (baseline[i].confirmed != observed[i].confirmed) ++flips;
  return flips;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
  }

  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.02, 0.10}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20};
  const std::vector<int> budgets =
      quick ? std::vector<int>{1, 3} : std::vector<int>{1, 2, 3, 4};

  std::cerr << "ablation_faults: baseline (no faults)...\n";
  const auto baseline = runStudies(0.0, 1);

  report::Json out = report::Json::object();
  out["bench"] = report::Json::string("ablation_faults");
  out["quick"] = report::Json::boolean(quick);
  out["seed"] = report::Json::number(
      static_cast<std::int64_t>(scenarios::kPaperSeed));
  out["studies"] = report::Json::number(
      static_cast<std::int64_t>(baseline.size()));
  out["baseline_verdicts"] = report::Json::string(verdictString(baseline));

  report::Json cells = report::Json::array();
  std::vector<std::optional<double>> flipPoints(budgets.size());

  for (std::size_t b = 0; b < budgets.size(); ++b) {
    for (const double rate : rates) {
      std::cerr << "ablation_faults: rate " << rate << " budget "
                << budgets[b] << "...\n";
      const auto start = Clock::now();
      const auto outcomes = runStudies(rate, budgets[b]);
      const double elapsed = millisSince(start);

      const int flips = countFlips(baseline, outcomes);
      int controlBlocked = 0;
      int confirmedCount = 0;
      for (const auto& outcome : outcomes) {
        controlBlocked += outcome.controlBlocked;
        if (outcome.confirmed) ++confirmedCount;
      }
      if (flips > 0 && !flipPoints[b]) flipPoints[b] = rate;

      report::Json cell = report::Json::object();
      cell["rate"] = report::Json::number(rate);
      cell["budget"] = report::Json::number(std::int64_t{budgets[b]});
      cell["verdicts"] = report::Json::string(verdictString(outcomes));
      cell["confirmed"] = report::Json::number(std::int64_t{confirmedCount});
      cell["flips"] = report::Json::number(std::int64_t{flips});
      cell["control_blocked"] =
          report::Json::number(std::int64_t{controlBlocked});
      cell["ms"] = report::Json::number(elapsed);
      cells.push(std::move(cell));
    }
  }
  out["cells"] = std::move(cells);

  // The headline: smallest swept rate at which each budget's Table 3
  // differs from the fault-free baseline (null = stable across the sweep).
  report::Json flipPointsJson = report::Json::array();
  for (std::size_t b = 0; b < budgets.size(); ++b) {
    report::Json entry = report::Json::object();
    entry["budget"] = report::Json::number(std::int64_t{budgets[b]});
    entry["flip_rate"] = flipPoints[b]
                             ? report::Json::number(*flipPoints[b])
                             : report::Json::null();
    flipPointsJson.push(std::move(entry));
  }
  out["flip_points"] = std::move(flipPointsJson);

  const std::string text = out.dump(2);
  std::ofstream file(outPath);
  file << text << '\n';
  std::cout << text << '\n';
  std::cerr << "ablation_faults: wrote " << outPath << '\n';
  return 0;
}
