// Reproduces Table 2 ("Summary of our methodology for identifying URL
// filtering products") and evaluates the §3 pipeline quantitatively:
// keyword-search candidates, fingerprint-validated installations, and
// precision/recall against the world's ground truth — including the decoy
// servers whose banners bait the keywords but must fail validation.
#include <cstdio>
#include <map>
#include <set>

#include "core/identifier.h"
#include "fingerprint/engine.h"
#include "report/table.h"
#include "scenarios/paper_world.h"
#include "util/strings.h"

int main() {
  using namespace urlf;
  using filters::ProductKind;

  scenarios::PaperWorld paper;
  auto& world = paper.world();

  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();

  scan::BannerIndex index;
  index.crawl(world, geo);

  auto engine = fingerprint::Engine::withBuiltinSignatures();
  core::Identifier identifier(world, index, engine, geo, whois);

  std::printf("%s",
              report::sectionBanner(
                  "Table 2: Identification methodology (keywords + signatures)")
                  .c_str());
  report::TextTable methodology(
      {"Product", "Shodan keywords", "WhatWeb signature rules"});
  for (const auto product : filters::allProducts()) {
    std::string keywords;
    for (const auto& k : core::Identifier::shodanKeywords(product)) {
      if (!keywords.empty()) keywords += ", ";
      keywords += "\"" + k + "\"";
    }
    std::string rules;
    for (const auto& signature : engine.signatures()) {
      if (signature.product != product) continue;
      for (const auto& weighted : signature.matchers) {
        if (!rules.empty()) rules += "; ";
        rules += weighted.matcher.describe();
      }
    }
    methodology.addRow(
        {std::string(filters::toString(product)), keywords, rules});
  }
  std::printf("%s", methodology.render().c_str());

  std::printf("%s", report::sectionBanner(
                        "Pipeline evaluation over the simulated Internet (" +
                        std::to_string(index.size()) + " banners indexed)")
                        .c_str());

  report::TextTable evaluation({"Product", "Keyword candidates",
                                "Validated installations", "True positives",
                                "False positives", "Missed (visible)",
                                "Precision", "Recall"});

  for (const auto product : filters::allProducts()) {
    const auto candidates = identifier.locateCandidates(product);
    const auto installations = identifier.identify(product);

    std::set<std::uint32_t> truth;
    for (const auto& g : paper.groundTruth())
      if (g.product == product && g.externallyVisible)
        truth.insert(g.serviceIp.value());

    int truePositives = 0;
    int falsePositives = 0;
    std::set<std::uint32_t> found;
    for (const auto& inst : installations) {
      found.insert(inst.ip.value());
      if (truth.contains(inst.ip.value()))
        ++truePositives;
      else
        ++falsePositives;
    }
    int missed = 0;
    for (const auto ip : truth)
      if (!found.contains(ip)) ++missed;

    auto percent = [](int num, int den) {
      if (den == 0) return std::string("n/a");
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * num / den);
      return std::string(buf);
    };

    evaluation.addRow({std::string(filters::toString(product)),
                       std::to_string(candidates.size()),
                       std::to_string(installations.size()),
                       std::to_string(truePositives),
                       std::to_string(falsePositives), std::to_string(missed),
                       percent(truePositives,
                               truePositives + falsePositives),
                       percent(truePositives, truePositives + missed)});
  }
  std::printf("%s", evaluation.render().c_str());

  std::printf(
      "\nDecoy servers with keyword-bait banners are counted as candidates\n"
      "but must not survive validation (\"we are not conservative, and rely\n"
      "on the following step to confirm\", sec 3.1). The one Netsweeper\n"
      "\"false positive\" is denypagetests.netsweeper.com — vendor-operated\n"
      "infrastructure that genuinely carries the product's signature but is\n"
      "not an ISP installation.\n");
  return 0;
}
