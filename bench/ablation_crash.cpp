// Crash-recovery ablation: proves a journaled campaign killed at ANY record
// boundary resumes into a bit-identical final report.
//
// For each scenario (clean pipeline; outage pipeline with vantage death,
// middlebox silent-stop, DB-rollback window and circuit breakers armed) and
// each classify-thread count (1 and 4):
//
//  1. run the full campaign once with a write-ahead journal, keeping the
//     journal file and the report digest,
//  2. for every record boundary k, craft the byte-exact prefix a crash
//     between appends k and k+1 would have left (appends are flushed
//     per-record, so a prefix at a line boundary IS the crash image),
//     open it for resume, re-run the campaign, and require the digest to
//     match the uninterrupted run and the resumed journal file to grow back
//     byte-identical,
//  3. repeat for torn-tail images (prefix + half of the next record) to
//     exercise the truncate-and-recover path.
//
// Thread counts 1 and 4 must agree with each other as well — a journal
// written at one thread count is resumed at the other in a final
// cross-check. Results land in BENCH_crash.json; exit is non-zero on any
// mismatch.
//
// Usage: ablation_crash [--quick] [--out PATH]
//   --quick samples every 13th boundary instead of all of them (CI smoke).
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.h"
#include "scenarios/campaign.h"

namespace {

using namespace urlf;
using measure::CampaignJournal;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

struct Scenario {
  const char* name;
  scenarios::CampaignOptions options;
};

std::vector<Scenario> buildScenarios() {
  std::vector<Scenario> out;

  out.push_back({"clean", scenarios::CampaignOptions{}});

  // Persistent failures + circuit breakers: field-nournet dies two days
  // into its own case study (retests degrade via the breaker), the Ooredoo
  // Netsweeper silently stops before the August characterization (fails
  // open), and a vendor-feed rollback window reverts policy state across
  // the April 2013 case studies.
  scenarios::CampaignOptions outage;
  outage.healthEnabled = true;
  outage.breaker.failureThreshold = 5;
  outage.breaker.cooldownHours = 24;
  outage.outages.vantageDeaths.push_back({"field-nournet", {2013, 5, 8}});
  outage.outages.middleboxStops.push_back(
      {"Ooredoo Netsweeper", {2013, 8, 20}});
  outage.outages.rollbacks.push_back(
      {{2013, 4, 1}, {2013, 5, 1}, {2013, 1, 1}});
  out.push_back({"outage", outage});

  return out;
}

std::string readFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeFile(const fs::path& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// Resume from a crafted journal image and re-run; returns true when the
/// resumed report digest matches `wantDigest` and the journal file grew
/// back to `wantText`.
bool resumeAndCheck(const fs::path& path, std::size_t threads,
                    std::uint64_t wantDigest, const std::string& wantText,
                    std::string& firstError) {
  auto opened = CampaignJournal::open(path.string());
  if (!opened) {
    if (firstError.empty()) firstError = "open failed: " + opened.error();
    return false;
  }
  auto adopted = scenarios::CampaignOptions::fromHeaderJson(opened->header());
  if (!adopted) {
    if (firstError.empty())
      firstError = "header adoption failed: " + adopted.error();
    return false;
  }
  adopted.value().classifyThreads = threads;
  scenarios::CampaignReport resumed;
  try {
    resumed = scenarios::runPaperCampaign(adopted.value(), &opened.value());
  } catch (const std::exception& e) {
    if (firstError.empty())
      firstError = "resume threw: " + std::string(e.what());
    return false;
  }
  if (resumed.digest != wantDigest) {
    if (firstError.empty())
      firstError = "digest mismatch after resume at " + path.string();
    return false;
  }
  if (readFile(path) != wantText) {
    if (firstError.empty())
      firstError = "journal bytes diverged after resume at " + path.string();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_crash.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: ablation_crash [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const fs::path tmpDir =
      fs::temp_directory_path() /
      ("urlf_crash_" + std::to_string(static_cast<unsigned>(
                           std::chrono::steady_clock::now()
                               .time_since_epoch()
                               .count() &
                           0xFFFFFF)));
  fs::create_directories(tmpDir);

  const std::vector<std::size_t> kThreads{1, 4};
  const std::size_t stride = quick ? 13 : 1;

  report::Json doc = report::Json::object();
  report::Json scenariosJson = report::Json::array();
  bool allEqual = true;
  std::string firstError;

  for (const auto& scenario : buildScenarios()) {
    report::Json scenarioJson = report::Json::object();
    scenarioJson["name"] = report::Json::string(scenario.name);
    report::Json perThread = report::Json::array();

    std::uint64_t scenarioDigest = 0;
    bool scenarioDigestSet = false;
    std::string fullTextAtT1;  // for the cross-thread resume check

    for (const std::size_t threads : kThreads) {
      const auto started = Clock::now();
      auto options = scenario.options;
      options.classifyThreads = threads;

      // 1. Uninterrupted journaled run.
      const fs::path fullPath =
          tmpDir / (std::string(scenario.name) + "_t" +
                    std::to_string(threads) + ".journal");
      auto journal =
          CampaignJournal::start(fullPath.string(), options.headerJson());
      const auto full = scenarios::runPaperCampaign(options, &journal);
      const std::string fullText = readFile(fullPath);
      if (threads == kThreads.front()) fullTextAtT1 = fullText;

      if (!scenarioDigestSet) {
        scenarioDigest = full.digest;
        scenarioDigestSet = true;
      } else if (full.digest != scenarioDigest) {
        allEqual = false;
        if (firstError.empty())
          firstError = std::string(scenario.name) +
                       ": thread counts disagree on the full-run digest";
      }

      // 2. Kill-and-resume at record boundaries.
      const auto boundaries = CampaignJournal::recordBoundaries(fullText);
      const fs::path crashPath =
          tmpDir / (std::string(scenario.name) + "_t" +
                    std::to_string(threads) + "_crash.journal");
      int tested = 0, mismatches = 0, tornTested = 0;
      for (std::size_t k = 0; k < boundaries.size(); k += stride) {
        writeFile(crashPath, std::string_view(fullText).substr(0, boundaries[k]));
        ++tested;
        if (!resumeAndCheck(crashPath, threads, full.digest, fullText,
                            firstError))
          ++mismatches;
      }

      // 3. Torn-tail images: boundary + half of the following record. The
      //    open must shed the torn bytes and the resume must still agree.
      for (std::size_t k = 0; k + 1 < boundaries.size(); k += stride * 4) {
        const std::size_t torn =
            boundaries[k] + (boundaries[k + 1] - boundaries[k]) / 2;
        writeFile(crashPath, std::string_view(fullText).substr(0, torn));
        ++tornTested;
        if (!resumeAndCheck(crashPath, threads, full.digest, fullText,
                            firstError))
          ++mismatches;
      }

      if (mismatches > 0) allEqual = false;
      const double millis =
          std::chrono::duration<double, std::milli>(Clock::now() - started)
              .count();

      report::Json entry = report::Json::object();
      entry["threads"] = report::Json::number(static_cast<std::int64_t>(threads));
      entry["records"] =
          report::Json::number(static_cast<std::int64_t>(journal.recordCount()));
      entry["boundaries_tested"] = report::Json::number(std::int64_t{tested});
      entry["torn_tested"] = report::Json::number(std::int64_t{tornTested});
      entry["mismatches"] = report::Json::number(std::int64_t{mismatches});
      entry["digest"] = report::Json::string(full.digestHex());
      entry["confirmed_case_studies"] =
          report::Json::number(std::int64_t{full.confirmedCaseStudies});
      entry["degraded_rows"] =
          report::Json::number(std::int64_t{full.degradedRows});
      entry["wall_ms"] = report::Json::number(millis);
      perThread.push(std::move(entry));

      std::cerr << "crash[" << scenario.name << " t" << threads
                << "]: records=" << journal.recordCount()
                << " boundaries=" << tested << " torn=" << tornTested
                << " mismatches=" << mismatches << " digest="
                << full.digestHex() << " (" << millis << "ms)\n";
    }

    // 4. Cross-thread resume: a journal written at t1, truncated mid-way,
    //    resumed at t4 — replay verification plus digest equality.
    {
      const auto boundaries = CampaignJournal::recordBoundaries(fullTextAtT1);
      const fs::path crossPath =
          tmpDir / (std::string(scenario.name) + "_cross.journal");
      writeFile(crossPath, std::string_view(fullTextAtT1)
                               .substr(0, boundaries[boundaries.size() / 2]));
      if (!resumeAndCheck(crossPath, 4, scenarioDigest, fullTextAtT1,
                          firstError))
        allEqual = false;
    }

    scenarioJson["threads"] = std::move(perThread);
    scenariosJson.push(std::move(scenarioJson));
  }

  fs::remove_all(tmpDir);

  doc["scenarios"] = std::move(scenariosJson);
  doc["all_equal"] = report::Json::boolean(allEqual);
  doc["quick"] = report::Json::boolean(quick);
  if (!firstError.empty())
    doc["first_error"] = report::Json::string(firstError);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "ablation_crash: cannot open " << outPath << "\n";
    return 1;
  }
  file << doc.dump(2) << "\n";
  std::cout << doc.dump(2) << "\n";

  if (!allEqual) {
    std::cerr << "ablation_crash: FAIL — " << firstError << "\n";
    return 1;
  }
  return 0;
}
