// Compares the two installation-locating data sources §3.1 discusses: the
// Shodan-style crawl of known external surfaces versus an Internet
// Census-style exhaustive address-space sweep — coverage, index size, and
// identification agreement.
#include <cstdio>
#include <set>

#include "core/identifier.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  const auto engine = fingerprint::Engine::withBuiltinSignatures();

  scan::BannerIndex shodan;
  shodan.crawl(world, geo);

  // The census sweeps whole prefixes across the signature ports.
  scan::CensusScanner census({80, 4711, 8080, 8082, 15871});
  const auto sweptRecords = census.sweep(world, geo);
  auto censusIndex = scan::BannerIndex::fromRecords(sweptRecords);

  std::uint64_t addressesProbed = 0;
  for (const auto* as : world.allAses())
    for (const auto& prefix : as->prefixes())
      addressesProbed += std::min<std::uint64_t>(prefix.size(), 4096) * 5;

  std::printf("%s", report::sectionBanner(
                        "Scan data sources: Shodan-style crawl vs Internet "
                        "Census-style sweep (sec 3.1)")
                        .c_str());
  report::TextTable sources({"Source", "Probes issued", "Banners indexed"});
  sources.addRow({"Shodan-style crawl (known surfaces)",
                  std::to_string(shodan.size()), std::to_string(shodan.size())});
  sources.addRow({"Census-style sweep (5 ports x address space)",
                  std::to_string(addressesProbed),
                  std::to_string(censusIndex.size())});
  std::printf("%s", sources.render().c_str());

  core::Identifier fromShodan(world, shodan, engine, geo, whois);
  core::Identifier fromCensus(world, censusIndex, engine, geo, whois);

  std::printf("%s",
              report::sectionBanner("Identification agreement").c_str());
  report::TextTable agreement(
      {"Product", "Via Shodan", "Via Census", "Same IP set?"});
  for (const auto product : filters::allProducts()) {
    auto ips = [](const std::vector<core::Installation>& installations) {
      std::set<std::uint32_t> out;
      for (const auto& inst : installations) out.insert(inst.ip.value());
      return out;
    };
    const auto a = ips(fromShodan.identify(product));
    const auto b = ips(fromCensus.identify(product));
    agreement.addRow({std::string(filters::toString(product)),
                      std::to_string(a.size()), std::to_string(b.size()),
                      a == b ? "yes" : "NO"});
  }
  std::printf("%s", agreement.render().c_str());

  std::printf(
      "\nBoth sources validate to the same installations; the census pays\n"
      "~%llux more probes for independence from the crawler's surface list.\n",
      static_cast<unsigned long long>(
          addressesProbed / std::max<std::size_t>(1, shodan.size())));
  return 0;
}
