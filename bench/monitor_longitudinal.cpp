// Longitudinal monitoring bench: the incremental hot path vs the full
// reference (DESIGN.md §4.7).
//
// A monitoring campaign re-runs scan → identify → re-test on a cadence. The
// full reference rebuilds the banner index, revalidates every candidate, and
// refetches every test URL each tick; the incremental pipeline rebuilds only
// the cells the churn feed marks dirty, reuses validations whose surface
// epoch is unchanged, and reuses verdicts no DB-mutation window touched.
// Both must produce byte-identical tick digests — this bench runs every
// (hosts × threads × mode) cell, asserts the digest sequences agree, and
// exits non-zero on any divergence.
//
// The churn feed is sized in absolute terms (~4 rebrands + ~1 parking per
// tick) rather than as a rate, so the per-tick delta is constant while the
// world grows: incremental cost tracks the delta, full cost tracks the
// world, and the speedup scales with host count.
//
// The resume section checkpoints campaigns of increasing length and times
// MonitorSession::resume: the checkpoint is an O(state) compaction, so
// resume cost must be flat in tick count (replay is clock/DB bookkeeping
// only — no scanning, no fetching).
//
// Usage: monitor_longitudinal [--quick] [--out PATH]
//   --quick  20k-host row only, fewer ticks, skips the 12-tick resume point
//   --out    output JSON path (default BENCH_monitor.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "report/json.h"
#include "scenarios/monitor.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

struct ModeRun {
  scenarios::MonitorMode mode;
  std::size_t threads;
  double wallMs = 0.0;
  double steadyMs = 0.0;  ///< mean per-tick ms excluding the baseline
  scenarios::MonitorReport report;
};

scenarios::MonitorOptions benchOptions(std::uint64_t hosts, int ticks) {
  scenarios::MonitorOptions options;
  options.streamHosts = hosts;
  options.hostsPerShard = 256;
  options.ticks = ticks;
  // Constant absolute churn regardless of world size (see file comment).
  options.churn.rebrandRate = 4.0 / static_cast<double>(hosts);
  options.churn.parkRate = 1.0 / static_cast<double>(hosts);
  options.churn.dbMutationsPerTick = 3;
  // The scripted events force full index rebuilds (structural) and full
  // retests by design; the timed rows measure steady-state churn instead.
  options.scriptedEvents = false;
  return options;
}

ModeRun timeRun(const scenarios::MonitorOptions& base,
                scenarios::MonitorMode mode, std::size_t threads) {
  ModeRun run;
  run.mode = mode;
  run.threads = threads;
  auto options = base;
  options.mode = mode;
  options.threads = threads;
  const auto start = Clock::now();
  run.report = scenarios::runMonitor(options);
  run.wallMs =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  double steady = 0.0;
  for (std::size_t i = 1; i < run.report.ticks.size(); ++i) {
    const auto& tick = run.report.ticks[i];
    steady += tick.scanMs + tick.identifyMs + tick.testMs;
  }
  run.steadyMs = run.report.ticks.size() > 1
                     ? steady / static_cast<double>(run.report.ticks.size() - 1)
                     : 0.0;
  return run;
}

double medianResumeMs(const std::string& path, int repeats) {
  std::vector<double> samples;
  for (int i = 0; i < repeats; ++i) {
    const auto start = Clock::now();
    auto resumed = scenarios::MonitorSession::resume(path);
    const double millis =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (!resumed.ok()) {
      std::cerr << "monitor_longitudinal: resume failed: " << resumed.error()
                << "\n";
      std::exit(1);
    }
    samples.push_back(millis);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_monitor.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: monitor_longitudinal [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const int ticks = quick ? 4 : 12;
  const std::vector<std::uint64_t> hostRows =
      quick ? std::vector<std::uint64_t>{20000}
            : std::vector<std::uint64_t>{20000, 100000};
  const std::vector<std::size_t> threadCols{1, 4};

  report::Json root = report::Json::object();
  root["quick"] = report::Json::boolean(quick);
  root["ticks"] = report::Json::number(std::int64_t{ticks});
  report::Json rows = report::Json::array();
  bool allEqual = true;

  for (const auto hosts : hostRows) {
    const auto base = benchOptions(hosts, ticks);
    report::Json rowJson = report::Json::object();
    rowJson["hosts"] = report::Json::string(std::to_string(hosts));
    report::Json cells = report::Json::array();

    const scenarios::MonitorReport* reference = nullptr;
    std::vector<ModeRun> runs;
    for (const auto threads : threadCols)
      for (const auto mode : {scenarios::MonitorMode::kFull,
                              scenarios::MonitorMode::kIncremental})
        runs.push_back(timeRun(base, mode, threads));
    reference = &runs.front().report;

    double fullMs = 0.0;
    double incrementalMs = 0.0;
    double fullSteadyMs = 0.0;
    double incrementalSteadyMs = 0.0;
    for (const auto& run : runs) {
      // Every cell must reproduce the reference digest sequence exactly.
      bool equal = run.report.ticks.size() == reference->ticks.size() &&
                   run.report.chainDigest == reference->chainDigest;
      if (equal)
        for (std::size_t i = 0; i < run.report.ticks.size(); ++i)
          if (run.report.ticks[i].digest != reference->ticks[i].digest)
            equal = false;
      if (!equal) allEqual = false;

      if (run.threads == threadCols.back()) {
        if (run.mode == scenarios::MonitorMode::kFull) {
          fullMs = run.wallMs;
          fullSteadyMs = run.steadyMs;
        } else {
          incrementalMs = run.wallMs;
          incrementalSteadyMs = run.steadyMs;
        }
      }

      const auto& last = run.report.ticks.back();
      report::Json cell = report::Json::object();
      cell["mode"] = report::Json::string(std::string(toString(run.mode)));
      cell["threads"] =
          report::Json::number(static_cast<std::int64_t>(run.threads));
      cell["wall_ms"] = report::Json::number(run.wallMs);
      cell["steady_tick_ms"] = report::Json::number(run.steadyMs);
      cell["chain_digest"] = report::Json::string(run.report.chainDigestHex());
      cell["digests_equal"] = report::Json::boolean(equal);
      cell["last_cells_rebuilt"] =
          report::Json::number(static_cast<std::int64_t>(last.cellsRebuilt));
      cell["cell_count"] =
          report::Json::number(static_cast<std::int64_t>(last.cellCount));
      cell["last_urls_tested"] =
          report::Json::number(static_cast<std::int64_t>(last.urlsTested));
      cell["last_urls_reused"] =
          report::Json::number(static_cast<std::int64_t>(last.urlsReused));
      cells.push(std::move(cell));

      std::fprintf(stderr,
                   "monitor[%7llu hosts, %-11s t%zu]: %8.1fms wall, "
                   "%7.1fms/tick steady, chain=%s%s\n",
                   static_cast<unsigned long long>(hosts),
                   std::string(toString(run.mode)).c_str(), run.threads,
                   run.wallMs, run.steadyMs,
                   run.report.chainDigestHex().c_str(),
                   equal ? "" : "  DIGEST MISMATCH");
    }

    rowJson["cells"] = std::move(cells);
    if (incrementalMs > 0.0)
      rowJson["speedup"] = report::Json::number(fullMs / incrementalMs);
    if (incrementalSteadyMs > 0.0)
      rowJson["steady_tick_speedup"] =
          report::Json::number(fullSteadyMs / incrementalSteadyMs);
    rows.push(std::move(rowJson));
  }
  root["rows"] = std::move(rows);
  root["all_equal"] = report::Json::boolean(allEqual);

  // --- resume flatness ------------------------------------------------------
  // Checkpoint campaigns of increasing length; resume cost must not grow
  // with history (the snapshot is O(state), replay is bookkeeping).
  {
    const std::vector<int> tickPoints =
        quick ? std::vector<int>{2, 6} : std::vector<int>{2, 6, 12};
    report::Json resume = report::Json::object();
    report::Json points = report::Json::array();
    double minMs = 0.0;
    double maxMs = 0.0;
    auto options = benchOptions(20000, 2);
    options.threads = threadCols.back();
    for (const auto tickCount : tickPoints) {
      options.ticks = tickCount;
      const std::string path = outPath + ".ckpt.tmp";
      (void)scenarios::runMonitor(options, path);
      const double millis = medianResumeMs(path, 3);
      std::remove(path.c_str());
      if (minMs == 0.0 || millis < minMs) minMs = millis;
      if (millis > maxMs) maxMs = millis;
      report::Json point = report::Json::object();
      point["ticks"] = report::Json::number(std::int64_t{tickCount});
      point["resume_ms"] = report::Json::number(millis);
      points.push(std::move(point));
      std::fprintf(stderr, "resume[%2d ticks]: %.1fms\n", tickCount, millis);
    }
    resume["points"] = std::move(points);
    const double maxOverMin = minMs > 0.0 ? maxMs / minMs : 0.0;
    resume["max_over_min"] = report::Json::number(maxOverMin);
    const bool flat = maxOverMin > 0.0 && maxOverMin < 3.0;
    resume["flat"] = report::Json::boolean(flat);
    root["resume"] = std::move(resume);
    if (!flat) {
      std::cerr << "monitor_longitudinal: FAIL — resume cost grows with tick "
                   "count (max/min = "
                << maxOverMin << ")\n";
      std::ofstream file(outPath);
      file << root.dump(2) << "\n";
      return 1;
    }
  }

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "monitor_longitudinal: cannot open " << outPath
              << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root.dump(2) << "\n";

  if (!allEqual) {
    std::cerr << "monitor_longitudinal: FAIL — incremental and full digests "
                 "diverge\n";
    return 1;
  }
  return 0;
}
