// Longitudinal monitoring bench (§1: "techniques for monitoring the use of
// specific technologies for censorship"): replays the 2012-2013 policy
// timeline over the simulated Internet and diffs identification runs —
// Blue Coat hiding its Syrian installation after the sanctions story [32],
// a new SmartFilter appearing in Pakistan-adjacent space, and the Yemen
// Netsweeper operator debranding its deny pages.
#include <cstdio>

#include "core/monitor.h"
#include "filters/smartfilter.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

namespace {

using namespace urlf;

std::map<filters::ProductKind, std::vector<core::Installation>> runScan(
    scenarios::PaperWorld& paper) {
  auto& world = paper.world();
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();
  scan::BannerIndex index;
  index.crawl(world, geo);
  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(),
                              geo, whois);
  return identifier.identifyAll();
}

void printDiffs(
    const std::map<filters::ProductKind, core::InstallationDiff>& diffs) {
  bool anything = false;
  for (const auto& [product, diff] : diffs) {
    if (diff.empty()) continue;
    anything = true;
    for (const auto& inst : diff.appeared)
      std::printf("  + %s appeared at %s (%s)\n",
                  std::string(filters::toString(product)).c_str(),
                  inst.ip.toString().c_str(), inst.countryAlpha2.c_str());
    for (const auto& inst : diff.vanished)
      std::printf("  - %s vanished from %s (%s)\n",
                  std::string(filters::toString(product)).c_str(),
                  inst.ip.toString().c_str(), inst.countryAlpha2.c_str());
  }
  if (!anything) std::printf("  (no changes)\n");
}

}  // namespace

int main() {
  using filters::ProductKind;

  scenarios::PaperWorld paper;
  auto& world = paper.world();

  std::printf("%s", report::sectionBanner(
                        "Longitudinal monitoring of URL filter installations")
                        .c_str());

  scenarios::advanceClockTo(world, {2012, 9, 1});
  auto baseline = runScan(paper);
  std::size_t total = 0;
  for (const auto& [product, installations] : baseline)
    total += installations.size();
  std::printf("9/2012 baseline scan: %zu validated installations\n\n", total);

  // --- Event 1: after the sanctions reporting, the Syrian operator hides
  // its Blue Coat appliance from external scans [26, 32].
  scenarios::advanceClockTo(world, {2012, 12, 1});
  for (const auto& truth : paper.groundTruth()) {
    if (truth.product == ProductKind::kBlueCoat &&
        truth.countryAlpha2 == "SY") {
      world.unbind(truth.serviceIp, 8082);
      world.unbind(truth.serviceIp, 80);
    }
  }
  auto december = runScan(paper);
  std::printf("12/2012 rescan (after the Syria sanctions story):\n");
  printDiffs(core::diffAll(baseline, december));

  // --- Event 2: a new SmartFilter installation appears in a Pakistani
  // university network.
  scenarios::advanceClockTo(world, {2013, 3, 1});
  world.createAs(45595, "PKU-NET", "Pakistani university network", "PK",
                 {net::IpPrefix::parse("111.68.0.0/16").value()});
  filters::FilterPolicy policy;
  policy.blockedCategories = {1};
  auto& newInstall = world.makeMiddlebox<filters::SmartFilterDeployment>(
      "PKU SmartFilter", paper.vendor(ProductKind::kSmartFilter), policy);
  newInstall.installExternalSurfaces(world, 45595);
  auto march = runScan(paper);
  std::printf("\n3/2013 rescan:\n");
  printDiffs(core::diffAll(december, march));

  // --- Event 3: the YemenNet operator debrands its deny pages; the
  // installation stays visible (debranding does not hide the WebAdmin
  // console), so monitoring sees no change — branding evasion must be
  // caught by the confirmation stage instead (Table 5).
  scenarios::advanceClockTo(world, {2013, 6, 1});
  paper.yemenNetsweeper().policy().stripBranding = true;
  auto june = runScan(paper);
  std::printf("\n6/2013 rescan (YemenNet debrands its deny pages):\n");
  printDiffs(core::diffAll(march, june));

  std::printf(
      "\nIdentification-level monitoring catches exposure changes (hiding,\n"
      "new installs) but is blind to behavioural changes like debranding —\n"
      "the independence of the paper's two methods, seen longitudinally.\n");
  return 0;
}
