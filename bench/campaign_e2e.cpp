// End-to-end campaign benchmark: times the full Table 3 confirmation
// sequence (ten case studies + the §4.4 Netsweeper category probe) and the
// Table 4 content characterization, once per pipeline mode:
//
//   reference  per-call regex construction, serial classify, no memo
//   fast       compiled pattern library, pooled classify, verdict memo
//   fast-t1    fast path pinned to 1 classify thread
//   fast-t2    fast path pinned to 2 classify threads
//
// Each mode runs against a freshly built PaperWorld with the same seed, and
// every observable campaign output (verdicts, block-page attributions,
// Table 3 ratios/decisions, Table 4 tallies, probe results) is folded into
// an FNV-1a digest; the modes must agree bit-for-bit. Raw fetch traces are
// deliberately NOT hashed: Websense block pages embed a per-session nonce,
// so equivalence is defined over verdicts and matches (see DESIGN.md §4.3).
//
// The campaign itself lives in scenarios::runPaperCampaign (shared with the
// crash-recovery harness in ablation_crash); this driver only loops the
// pipeline modes and merges timings into BENCH_fetch.json (written by
// micro_fetch) under the "campaign" key.
//
// Usage: campaign_e2e [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.h"
#include "scenarios/campaign.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

struct Mode {
  const char* name;
  measure::ClassifyMode classifyMode;
  std::size_t classifyThreads;
  bool memoizeVerdicts;
};

const std::vector<Mode> kModes{
    {"reference", measure::ClassifyMode::kReference, 1, false},
    {"fast", measure::ClassifyMode::kCompiled, 0, true},
    {"fast-t1", measure::ClassifyMode::kCompiled, 1, true},
    {"fast-t2", measure::ClassifyMode::kCompiled, 2, true},
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_fetch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: campaign_e2e [--quick] [--out PATH]\n";
      return 2;
    }
  }

  // --quick drops the two extra pinned-thread-count runs.
  const std::size_t modeCount = quick ? 2 : kModes.size();

  report::Json campaign = report::Json::object();
  report::Json modes = report::Json::array();
  bool allEqual = true;
  std::uint64_t referenceDigest = 0;
  double referenceMs = 0.0;
  double fastMs = 0.0;

  for (std::size_t i = 0; i < modeCount; ++i) {
    const auto& mode = kModes[i];
    scenarios::CampaignOptions options;
    options.classifyMode = mode.classifyMode;
    options.classifyThreads = mode.classifyThreads;
    options.memoizeVerdicts = mode.memoizeVerdicts;

    const auto start = Clock::now();
    const auto report = scenarios::runPaperCampaign(options);
    const double millis =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();

    if (i == 0) {
      referenceDigest = report.digest;
      referenceMs = millis;
    } else {
      if (report.digest != referenceDigest) allEqual = false;
      if (std::strcmp(mode.name, "fast") == 0) fastMs = millis;
    }

    report::Json entry = report::Json::object();
    entry["mode"] = report::Json::string(mode.name);
    entry["wall_ms"] = report::Json::number(millis);
    entry["digest"] = report::Json::string(report.digestHex());
    entry["confirmed_case_studies"] =
        report::Json::number(std::int64_t{report.confirmedCaseStudies});
    entry["probe_blocked_categories"] =
        report::Json::number(std::int64_t{report.probeBlockedCategories});
    entry["table4_blocked"] =
        report::Json::number(std::int64_t{report.table4Blocked});
    modes.push(std::move(entry));

    std::cerr << "campaign[" << mode.name << "]: " << millis
              << "ms digest=" << report.digestHex()
              << " confirmed=" << report.confirmedCaseStudies << "\n";
  }

  campaign["modes"] = std::move(modes);
  campaign["digests_equal"] = report::Json::boolean(allEqual);
  if (fastMs > 0.0)
    campaign["speedup_vs_reference"] =
        report::Json::number(referenceMs / fastMs);

  // Merge into micro_fetch's output file (or start a fresh document).
  report::Json root = report::Json::object();
  {
    std::ifstream in(outPath);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (auto parsed = report::Json::parse(buffer.str());
          parsed && parsed->isObject())
        root = std::move(*parsed);
    }
  }
  root["campaign"] = std::move(campaign);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "campaign_e2e: cannot open " << outPath << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root["campaign"].dump(2) << "\n";

  if (!allEqual) {
    std::cerr << "campaign_e2e: FAIL — mode digests diverge\n";
    return 1;
  }
  return 0;
}
