// End-to-end campaign benchmark: times the full Table 3 confirmation
// sequence (ten case studies + the §4.4 Netsweeper category probe) and the
// Table 4 content characterization, once per pipeline mode:
//
//   reference  per-call regex construction, serial classify, no memo
//   fast       compiled pattern library, pooled classify, verdict memo
//   fast-t1    fast path pinned to 1 classify thread
//   fast-t2    fast path pinned to 2 classify threads
//
// Each mode runs against a freshly built PaperWorld with the same seed, and
// every observable campaign output (verdicts, block-page attributions,
// Table 3 ratios/decisions, Table 4 tallies, probe results) is folded into
// an FNV-1a digest; the modes must agree bit-for-bit. Raw fetch traces are
// deliberately NOT hashed: Websense block pages embed a per-session nonce,
// so equivalence is defined over verdicts and matches (see DESIGN.md §4.3).
//
// Results are merged into BENCH_fetch.json (written by micro_fetch) under
// the "campaign" key.
//
// Usage: campaign_e2e [--quick] [--out PATH]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/characterizer.h"
#include "core/confirmer.h"
#include "report/json.h"
#include "scenarios/paper_world.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

struct Mode {
  const char* name;
  measure::ClassifyMode classifyMode;
  std::size_t classifyThreads;
  bool memoizeVerdicts;
};

const std::vector<Mode> kModes{
    {"reference", measure::ClassifyMode::kReference, 1, false},
    {"fast", measure::ClassifyMode::kCompiled, 0, true},
    {"fast-t1", measure::ClassifyMode::kCompiled, 1, true},
    {"fast-t2", measure::ClassifyMode::kCompiled, 2, true},
};

std::uint64_t fnv1a64(std::string_view s, std::uint64_t hash) {
  for (const char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Digest of one per-URL result: url, verdict, and the attributed block
/// page (product + pattern name) when present. Traces are skipped — see the
/// file comment.
void digestResult(std::ostringstream& digest,
                  const measure::UrlTestResult& result) {
  digest << result.url << '|' << static_cast<int>(result.verdict) << '|';
  if (result.blockPage)
    digest << filters::toString(result.blockPage->product) << '/'
           << result.blockPage->patternName;
  else
    digest << '-';
  digest << '\n';
}

struct CampaignOutcome {
  double millis = 0.0;
  std::uint64_t digest = 0;
  int confirmedCaseStudies = 0;
  int probeBlockedCategories = 0;
  int table4Blocked = 0;
};

/// The Table 3 + probe + Table 4 sequence, verbatim from the bench drivers,
/// with the fetch→classify knobs of `mode` applied everywhere they exist.
CampaignOutcome runCampaign(const Mode& mode) {
  const auto start = Clock::now();
  std::ostringstream digest;

  scenarios::PaperWorld paper;
  auto& world = paper.world();
  core::Confirmer confirmer(world, paper.hosting(), paper.vendorSet());

  // --- Table 3: the ten case studies, chronologically, with the §4.4
  // Netsweeper probe interleaved in January 2013.
  CampaignOutcome outcome;
  bool categoryProbeDone = false;
  for (const auto& caseStudy : paper.caseStudies()) {
    if (!categoryProbeDone &&
        caseStudy.startDate >= util::CivilDate{2013, 1, 1}) {
      scenarios::advanceClockTo(world, {2013, 1, 14});
      const auto probe =
          confirmer.probeNetsweeperCategories("field-yemennet", "lab-toronto");
      digest << "probe:";
      for (const auto& p : probe) {
        digest << p.category << '=' << (p.blocked ? '1' : '0') << ';';
        if (p.blocked) ++outcome.probeBlockedCategories;
      }
      digest << '\n';
      categoryProbeDone = true;
    }
    scenarios::advanceClockTo(world, caseStudy.startDate);

    auto config = caseStudy.config;
    config.classifyMode = mode.classifyMode;
    config.classifyThreads = mode.classifyThreads;
    config.memoizeVerdicts = mode.memoizeVerdicts;
    const auto result = confirmer.run(config);
    if (result.confirmed) ++outcome.confirmedCaseStudies;

    digest << "case:" << filters::toString(config.product) << '|'
           << config.ispName << '|' << result.dateLabel << '|'
           << result.submittedRatio() << '|' << result.blockedRatio() << '|'
           << (result.confirmed ? 'y' : 'n') << '|'
           << result.pretestAccessibleCount << '|'
           << result.attributedToProduct << '|' << result.controlBlocked
           << '|' << result.notes << '\n';
    for (const auto& r : result.finalResults) digestResult(digest, r);
  }

  // --- Table 4: characterize the four confirmed networks.
  struct Network {
    const char* vantage;
    const char* alpha2;
    util::CivilDate date;
    int runs;
  };
  const std::vector<Network> networks{
      {"field-etisalat", "AE", {2013, 5, 6}, 1},
      {"field-yemennet", "YE", {2013, 4, 1}, 3},
      {"field-du", "AE", {2013, 4, 1}, 1},
      {"field-ooredoo", "QA", {2013, 8, 26}, 1},
  };
  core::Characterizer characterizer(world);
  for (const auto& network : networks) {
    scenarios::advanceClockTo(world, network.date);
    core::CharacterizeOptions options;
    options.runs = network.runs;
    options.classifyMode = mode.classifyMode;
    options.classifyThreads = mode.classifyThreads;
    options.memoizeVerdicts = mode.memoizeVerdicts;
    const auto result = characterizer.characterize(
        network.vantage, "lab-toronto", paper.globalList(),
        paper.localList(network.alpha2), options);

    digest << "network:" << network.vantage << '|'
           << (result.attributedProduct
                   ? filters::toString(*result.attributedProduct)
                   : "(none)");
    for (const auto& [category, cell] : result.cells) {
      digest << '|' << category << '=' << cell.tested << '/' << cell.blocked;
      outcome.table4Blocked += cell.blocked;
    }
    digest << '\n';
    for (const auto& r : result.results) digestResult(digest, r);
  }

  outcome.millis = std::chrono::duration<double, std::milli>(Clock::now() -
                                                             start)
                       .count();
  outcome.digest = fnv1a64(digest.str(), 0xCBF29CE484222325ULL);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_fetch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::cerr << "usage: campaign_e2e [--quick] [--out PATH]\n";
      return 2;
    }
  }

  // --quick drops the two extra pinned-thread-count runs.
  const std::size_t modeCount = quick ? 2 : kModes.size();

  report::Json campaign = report::Json::object();
  report::Json modes = report::Json::array();
  bool allEqual = true;
  std::uint64_t referenceDigest = 0;
  double referenceMs = 0.0;
  double fastMs = 0.0;

  for (std::size_t i = 0; i < modeCount; ++i) {
    const auto& mode = kModes[i];
    const auto outcome = runCampaign(mode);
    if (i == 0) {
      referenceDigest = outcome.digest;
      referenceMs = outcome.millis;
    } else {
      if (outcome.digest != referenceDigest) allEqual = false;
      if (std::strcmp(mode.name, "fast") == 0) fastMs = outcome.millis;
    }

    report::Json entry = report::Json::object();
    entry["mode"] = report::Json::string(mode.name);
    entry["wall_ms"] = report::Json::number(outcome.millis);
    entry["digest"] = report::Json::string(hex(outcome.digest));
    entry["confirmed_case_studies"] =
        report::Json::number(std::int64_t{outcome.confirmedCaseStudies});
    entry["probe_blocked_categories"] =
        report::Json::number(std::int64_t{outcome.probeBlockedCategories});
    entry["table4_blocked"] =
        report::Json::number(std::int64_t{outcome.table4Blocked});
    modes.push(std::move(entry));

    std::cerr << "campaign[" << mode.name << "]: " << outcome.millis
              << "ms digest=" << hex(outcome.digest)
              << " confirmed=" << outcome.confirmedCaseStudies << "\n";
  }

  campaign["modes"] = std::move(modes);
  campaign["digests_equal"] = report::Json::boolean(allEqual);
  if (fastMs > 0.0)
    campaign["speedup_vs_reference"] =
        report::Json::number(referenceMs / fastMs);

  // Merge into micro_fetch's output file (or start a fresh document).
  report::Json root = report::Json::object();
  {
    std::ifstream in(outPath);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      if (auto parsed = report::Json::parse(buffer.str());
          parsed && parsed->isObject())
        root = std::move(*parsed);
    }
  }
  root["campaign"] = std::move(campaign);

  std::ofstream file(outPath);
  if (!file) {
    std::cerr << "campaign_e2e: cannot open " << outPath << " for writing\n";
    return 1;
  }
  file << root.dump(2) << "\n";
  std::cout << root["campaign"].dump(2) << "\n";

  if (!allEqual) {
    std::cerr << "campaign_e2e: FAIL — mode digests diverge\n";
    return 1;
  }
  return 0;
}
