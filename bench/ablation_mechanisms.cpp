// Confusion-matrix ablation for the §4.8 mechanism classifier: fault rate
// x evidence budget.
//
// A dedicated world carries four hosts per ground-truth blocking class —
// DNS poisoning (NXDOMAIN), stateful TCP RST injection, SNI filtering
// (HTTPS), null-routing — plus four unfiltered hosts, all behind one field
// vantage. For each (per-process fault rate, trial budget) cell a fresh
// world is built and every host classified; the cell reports the full
// confusion matrix, the mechanism accuracy over censored hosts, the
// inconclusive rate, and the headline robustness number: how many
// *unfiltered* hosts were handed a censorship verdict (false censorship).
// The evidence budget exists so that number is 0 at budget >= 3 for
// realistic fault rates.
//
// Emits BENCH_mechanisms.json. Everything is deterministic: same seed,
// same matrix.
//
// Usage: ablation_mechanisms [--quick] [--out PATH]
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "measure/mechanism.h"
#include "report/json.h"
#include "simnet/fault.h"
#include "simnet/origin_server.h"
#include "simnet/packet_filter.h"
#include "simnet/world.h"

namespace {

using namespace urlf;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 20130813;
constexpr int kHostsPerClass = 4;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct GroundTruthHost {
  std::string url;
  measure::Mechanism truth = measure::Mechanism::kNone;
};

struct MechanismWorld {
  std::unique_ptr<simnet::World> world;
  std::vector<GroundTruthHost> hosts;
  const simnet::VantagePoint* field = nullptr;
  const simnet::VantagePoint* lab = nullptr;
};

MechanismWorld buildWorld(double faultRate) {
  MechanismWorld out;
  out.world = std::make_unique<simnet::World>(kSeed);
  auto& world = *out.world;
  if (faultRate > 0.0)
    world.setFaultPlan(simnet::FaultPlan(
        kSeed ^ 0xFA017FA017ULL, simnet::FaultRates::uniform(faultRate)));

  world.createAs(64500, "TESTNET", "Testland Telecom", "TL",
                 {net::IpPrefix{net::Ipv4Addr{std::uint32_t{10} << 24}, 16}});
  auto& isp = world.createIsp("Testland Telecom", "TL", {64500});
  out.field = &world.createVantage("field-testland", "TL", &isp);
  out.lab = &world.createVantage("lab-control", "CA", nullptr);

  const auto addSite = [&](const std::string& host, std::uint16_t port) {
    auto& server = world.makeEndpoint<simnet::OriginServer>(host);
    simnet::Page page;
    page.title = host;
    page.body = "<h1>" + host + "</h1><p>benign content</p>";
    page.contentLabel = "benign";
    server.setPage("/", std::move(page));
    const auto ip = world.allocateAddress(64500);
    world.bind(ip, port, server, /*externallyVisible=*/true);
    world.registerHostname(host, ip);
  };

  auto& poisoner = world.makePacketFilter<simnet::DnsPoisoner>(
      "tl-dns-poisoner", simnet::DnsTamper::Kind::kNxdomain);
  std::vector<std::string> rstKeywords;
  std::vector<std::string> sniHosts;
  std::vector<std::string> nullHosts;

  for (int i = 0; i < kHostsPerClass; ++i) {
    const std::string suffix = std::to_string(i) + ".example";

    const std::string dnsHost = "dns" + suffix;
    addSite(dnsHost, 80);
    poisoner.poisonZone(dnsHost);
    out.hosts.push_back(
        {"http://" + dnsHost + "/", measure::Mechanism::kDnsPoisoning});

    const std::string rstHost = "rst" + suffix;
    addSite(rstHost, 80);
    rstKeywords.push_back(rstHost);
    out.hosts.push_back(
        {"http://" + rstHost + "/", measure::Mechanism::kTcpInjection});

    const std::string sniHost = "sni" + suffix;
    addSite(sniHost, 443);
    sniHosts.push_back(sniHost);
    out.hosts.push_back(
        {"https://" + sniHost + "/", measure::Mechanism::kSniFiltering});

    const std::string nullHost = "null" + suffix;
    addSite(nullHost, 80);
    nullHosts.push_back(nullHost);
    out.hosts.push_back(
        {"http://" + nullHost + "/", measure::Mechanism::kNullRouting});

    const std::string openHost = "open" + suffix;
    addSite(openHost, 80);
    out.hosts.push_back(
        {"http://" + openHost + "/", measure::Mechanism::kNone});
  }

  auto& injector = world.makePacketFilter<simnet::RstInjector>(
      "tl-rst-injector", std::move(rstKeywords), /*holdDownHours=*/24);
  auto& sniFilter = world.makePacketFilter<simnet::SniFilter>(
      "tl-sni-filter", std::move(sniHosts));
  auto& blackhole = world.makePacketFilter<simnet::NullRouteFilter>(
      "tl-null-route", std::move(nullHosts));
  isp.attachPacketFilter(poisoner);
  isp.attachPacketFilter(injector);
  isp.attachPacketFilter(sniFilter);
  isp.attachPacketFilter(blackhole);
  return out;
}

bool isCensorshipVerdict(measure::Mechanism mechanism) {
  return mechanism != measure::Mechanism::kNone &&
         mechanism != measure::Mechanism::kInconclusive;
}

struct CellStats {
  /// truth name -> verdict name -> count.
  std::map<std::string, std::map<std::string, int>> confusion;
  int falseCensorship = 0;   ///< unfiltered hosts given a censorship verdict
  int inconclusive = 0;
  int censoredCorrect = 0;   ///< censored hosts with the exact mechanism
  int censoredTotal = 0;
  int fetches = 0;
};

CellStats runCell(double rate, int budget) {
  auto mw = buildWorld(rate);
  measure::MechanismOptions options;
  options.trialBudget = budget;
  measure::MechanismClassifier classifier(*mw.world, *mw.field, *mw.lab,
                                          options);
  CellStats stats;
  for (const auto& host : mw.hosts) {
    const auto verdict = classifier.classify(host.url);
    ++stats.confusion[std::string(toString(host.truth))]
                     [std::string(toString(verdict.mechanism))];
    stats.fetches += verdict.trials;
    if (verdict.mechanism == measure::Mechanism::kInconclusive)
      ++stats.inconclusive;
    if (host.truth == measure::Mechanism::kNone) {
      if (isCensorshipVerdict(verdict.mechanism)) ++stats.falseCensorship;
    } else {
      ++stats.censoredTotal;
      if (verdict.mechanism == host.truth) ++stats.censoredCorrect;
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string outPath = "BENCH_mechanisms.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      outPath = argv[++i];
  }

  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.01, 0.05, 0.10};
  const std::vector<int> budgets =
      quick ? std::vector<int>{1, 3} : std::vector<int>{1, 3, 5};

  const int totalHosts = kHostsPerClass * 5;

  report::Json out = report::Json::object();
  out["bench"] = report::Json::string("ablation_mechanisms");
  out["quick"] = report::Json::boolean(quick);
  out["seed"] = report::Json::number(static_cast<std::int64_t>(kSeed));
  out["hosts"] = report::Json::number(std::int64_t{totalHosts});
  out["hosts_per_class"] =
      report::Json::number(std::int64_t{kHostsPerClass});

  report::Json cells = report::Json::array();
  int falseCensorshipAtBudget3 = 0;  // across rates <= 0.05

  for (const int budget : budgets) {
    for (const double rate : rates) {
      std::cerr << "ablation_mechanisms: rate " << rate << " budget "
                << budget << "...\n";
      const auto start = Clock::now();
      const auto stats = runCell(rate, budget);
      const double elapsed = millisSince(start);

      if (budget >= 3 && rate <= 0.05)
        falseCensorshipAtBudget3 += stats.falseCensorship;

      report::Json cell = report::Json::object();
      cell["rate"] = report::Json::number(rate);
      cell["budget"] = report::Json::number(std::int64_t{budget});
      report::Json confusion = report::Json::object();
      for (const auto& [truth, verdicts] : stats.confusion) {
        report::Json row = report::Json::object();
        for (const auto& [verdict, count] : verdicts)
          row[verdict] = report::Json::number(std::int64_t{count});
        confusion[truth] = std::move(row);
      }
      cell["confusion"] = std::move(confusion);
      cell["false_censorship"] =
          report::Json::number(std::int64_t{stats.falseCensorship});
      cell["inconclusive_rate"] = report::Json::number(
          static_cast<double>(stats.inconclusive) / totalHosts);
      cell["mechanism_accuracy"] = report::Json::number(
          stats.censoredTotal > 0
              ? static_cast<double>(stats.censoredCorrect) /
                    stats.censoredTotal
              : 1.0);
      cell["fetches"] = report::Json::number(std::int64_t{stats.fetches});
      cell["ms"] = report::Json::number(elapsed);
      cells.push(std::move(cell));
    }
  }
  out["cells"] = std::move(cells);
  // The headline: summed false-censorship verdicts over every swept cell
  // with budget >= 3 and rate <= 0.05. The evidence budget's contract is
  // that this is zero.
  out["false_censorship_at_budget3"] =
      report::Json::number(std::int64_t{falseCensorshipAtBudget3});

  const std::string text = out.dump(2);
  std::ofstream file(outPath);
  file << text << '\n';
  std::cout << text << '\n';
  std::cerr << "ablation_mechanisms: wrote " << outPath << '\n';

  if (falseCensorshipAtBudget3 != 0) {
    std::cerr << "ablation_mechanisms: FALSE CENSORSHIP at budget >= 3\n";
    return 1;
  }
  return 0;
}
