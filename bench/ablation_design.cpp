// Ablation benches for the design choices DESIGN.md §4 calls out:
//   A. retest repetition vs. inconsistent blocking (decision 4 — why the
//      confirmer repeats runs in flaky networks),
//   B. wait duration vs. vendor review latency (decision 3 — why "after
//      3-5 days" matters),
//   C. the decision threshold (decision 3 — where the 2/3 rule separates
//      the paper's confirmed and unconfirmed rows),
//   D. sync coverage vs. observed blocking (decision behind the Du 5/6 row).
#include <cstdio>

#include "core/confirmer.h"
#include "report/table.h"
#include "scenarios/paper_world.h"
#include "scenarios/yemen2009.h"

int main() {
  using namespace urlf;

  // ---- A. Retest repetition under inconsistent blocking -------------------
  std::printf("%s", report::sectionBanner(
                        "A: retest passes vs. blocked count under "
                        "license-driven inconsistency (Challenge 2)")
                        .c_str());
  {
    report::TextTable table({"Retest passes", "Submitted blocked (of 6)",
                             "Confirmed?"});
    for (const int runs : {1, 2, 3, 4, 6, 8}) {
      scenarios::Yemen2009 yemen;
      // Start at late morning so single passes straddle the license edge.
      yemen.world().clock().advanceHours(10);
      core::Confirmer confirmer(yemen.world(), yemen.hosting(),
                                yemen.vendorSet());
      auto config = yemen.caseStudyConfig();
      config.retestRuns = runs;
      const auto result = confirmer.run(config);
      table.addRow({std::to_string(runs),
                    std::to_string(result.submittedBlocked),
                    result.confirmed ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- B. Wait duration vs. review latency --------------------------------
  std::printf("%s", report::sectionBanner(
                        "B: days waited before retest vs. vendor review "
                        "completion (3-5 day window, sec 4.2)")
                        .c_str());
  {
    report::TextTable table(
        {"Wait (days)", "Submitted blocked (of 5)", "Confirmed?"});
    for (const int waitDays : {1, 2, 3, 4, 5, 6}) {
      scenarios::PaperWorld paper;
      core::Confirmer confirmer(paper.world(), paper.hosting(),
                                paper.vendorSet());
      auto config = paper.caseStudies()[0].config;  // SmartFilter / Bayanat
      config.waitDays = waitDays;
      scenarios::advanceClockTo(paper.world(),
                                paper.caseStudies()[0].startDate);
      const auto result = confirmer.run(config);
      table.addRow({std::to_string(waitDays),
                    std::to_string(result.submittedBlocked),
                    result.confirmed ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- C. Decision threshold over the paper's observed outcomes -----------
  std::printf("%s", report::sectionBanner(
                        "C: the 2/3 decision rule across Table 3's observed "
                        "(blocked, submitted) pairs")
                        .c_str());
  {
    report::TextTable table({"Observed", "ceil(2k/3) needed", "Decision"});
    struct Observed {
      int blocked;
      int submitted;
    };
    for (const auto& [blocked, submitted] :
         {Observed{5, 5}, Observed{5, 6}, Observed{6, 6}, Observed{4, 6},
          Observed{3, 6}, Observed{0, 3}, Observed{0, 5}, Observed{1, 5}}) {
      const int needed = (2 * submitted + 2) / 3;
      table.addRow({std::to_string(blocked) + "/" + std::to_string(submitted),
                    std::to_string(needed),
                    core::Confirmer::decide(blocked, blocked, submitted)
                        ? "confirmed"
                        : "not confirmed"});
    }
    std::printf("%s", table.render().c_str());
  }

  // ---- D. Sync coverage vs. observed blocking ------------------------------
  std::printf("%s", report::sectionBanner(
                        "D: deployment DB sync coverage vs. blocked count "
                        "(the mechanism behind Du's 5/6)")
                        .c_str());
  {
    report::TextTable table(
        {"Sync coverage", "Submitted blocked (of 6)", "Confirmed?"});
    for (const double coverage : {1.0, 0.85, 0.6, 0.4, 0.2, 0.0}) {
      scenarios::PaperWorld paper;
      paper.duNetsweeper().policy().syncCoverage = coverage;
      core::Confirmer confirmer(paper.world(), paper.hosting(),
                                paper.vendorSet());
      const auto& caseStudy = paper.caseStudies()[2];  // Netsweeper / Du
      scenarios::advanceClockTo(paper.world(), caseStudy.startDate);
      const auto result = confirmer.run(caseStudy.config);
      char label[16];
      std::snprintf(label, sizeof label, "%.2f", coverage);
      table.addRow({label, std::to_string(result.submittedBlocked),
                    result.confirmed ? "yes" : "no"});
    }
    std::printf("%s", table.render().c_str());
  }

  std::printf(
      "\nReadings: A shows single-pass retests under-count in flaky networks;"
      "\nB shows retesting before the review window closes yields false\n"
      "negatives; C shows the 2/3 rule cleanly separates every observed\n"
      "outcome in Table 3; D shows partial DB sync degrades blocking\n"
      "gracefully until the decision flips below ~2/3 coverage.\n");
  return 0;
}
