// Reproduces Figure 1 ("Locations of URL filter installations"): runs the
// full §3 identification pipeline (banner scan -> keyword search ->
// fingerprint validation -> geo/ASN mapping) over the simulated Internet
// and prints, per product, the countries and networks where validated
// installations were found.
#include <cstdio>
#include <map>
#include <set>

#include "core/identifier.h"
#include "net/cctld.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  auto& world = paper.world();

  const auto geo = world.buildGeoDatabase(paper.options().geoErrorRate);
  const auto whois = world.buildAsnDatabase();

  scan::BannerIndex index;
  index.crawl(world, geo);

  core::Identifier identifier(world, index,
                              fingerprint::Engine::withBuiltinSignatures(), geo,
                              whois);
  const auto all = identifier.identifyAll();
  const auto countries = core::Identifier::countriesByProduct(all);

  std::printf("%s", report::sectionBanner(
                        "Figure 1: Locations of URL filter installations")
                        .c_str());

  report::TextTable summary({"Product", "Installations", "Countries"});
  for (const auto product : filters::allProducts()) {
    std::string names;
    for (const auto& alpha2 : countries.at(product)) {
      if (!names.empty()) names += ", ";
      const auto country = net::countryByAlpha2(alpha2);
      names += country ? std::string(country->name) : alpha2;
    }
    summary.addRow({std::string(filters::toString(product)),
                    std::to_string(all.at(product).size()), names});
  }
  std::printf("%s", summary.render().c_str());

  std::printf("%s",
              report::sectionBanner("Validated installations (detail)").c_str());
  report::TextTable detail({"Product", "IP:port", "Country", "AS", "Network"});
  for (const auto product : filters::allProducts()) {
    for (const auto& inst : all.at(product)) {
      detail.addRow({std::string(filters::toString(product)),
                     inst.ip.toString() + ":" + std::to_string(inst.port),
                     inst.countryAlpha2,
                     inst.asn ? "AS" + std::to_string(inst.asn->asn) : "?",
                     inst.asn ? inst.asn->description : "unknown"});
    }
  }
  std::printf("%s", detail.render().c_str());
  return 0;
}
