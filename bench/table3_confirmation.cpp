// Reproduces Table 3 ("Summary of URL filter case studies") and the §4.4
// Netsweeper category probe: runs the ten case studies chronologically
// through the §4 confirmation methodology against the simulated paper world.
#include <cstdio>
#include <string>

#include "net/cctld.h"

#include "core/confirmer.h"
#include "report/table.h"
#include "scenarios/paper_world.h"

namespace {

std::string countryName(const std::string& alpha2) {
  const auto country = urlf::net::countryByAlpha2(alpha2);
  return country ? std::string(country->name) : alpha2;
}

}  // namespace

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());

  std::printf("%s", report::sectionBanner(
                        "Table 3: Summary of URL filter case studies")
                        .c_str());

  report::TextTable table({"Product", "Country", "ISP", "Date",
                           "Sites submitted", "Category", "Sites blocked",
                           "Confirmed?", "Mechanism"});

  // §4.4's alternative validation runs in January 2013, between the 2012 and
  // 2013 case studies.
  bool categoryProbeDone = false;
  std::vector<core::CategoryProbeResult> categoryProbe;

  for (const auto& caseStudy : paper.caseStudies()) {
    if (!categoryProbeDone && caseStudy.startDate >= util::CivilDate{2013, 1, 1}) {
      scenarios::advanceClockTo(paper.world(), {2013, 1, 14});
      categoryProbe =
          confirmer.probeNetsweeperCategories("field-yemennet", "lab-toronto");
      categoryProbeDone = true;
    }
    scenarios::advanceClockTo(paper.world(), caseStudy.startDate);
    const auto result = confirmer.run(caseStudy.config);

    const auto& cfg = result.config;
    table.addRow({std::string(filters::toString(cfg.product)),
                  countryName(cfg.countryAlpha2),
                  cfg.ispName + " (AS " +
                      std::to_string(paper.world()
                                         .findIsp(cfg.ispName)
                                         ->primaryAsn()) +
                      ")",
                  result.dateLabel, result.submittedRatio(),
                  cfg.categoryLabel.empty() ? cfg.categoryName
                                            : cfg.categoryLabel,
                  result.blockedRatio(), result.confirmed ? "yes" : "no",
                  result.dominantMechanism()});
    if (!result.notes.empty())
      std::printf("  note [%s/%s]: %s\n",
                  std::string(filters::toString(cfg.product)).c_str(),
                  cfg.ispName.c_str(), result.notes.c_str());
  }

  std::printf("%s", table.render().c_str());

  std::printf("%s",
              report::sectionBanner(
                  "Netsweeper category test URLs in YemenNet, 1/2013 (sec 4.4)")
                  .c_str());
  int blockedCount = 0;
  for (const auto& probe : categoryProbe) {
    if (!probe.blocked) continue;
    ++blockedCount;
    std::printf("  blocked: catno %d (%s)\n", probe.category,
                probe.categoryName.c_str());
  }
  std::printf("  %d of %zu categories blocked\n", blockedCount,
              categoryProbe.size());
  return 0;
}
