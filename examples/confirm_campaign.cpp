// Narrated run of one §4 confirmation case study — the 9/2012 SmartFilter
// experiment in Etisalat — showing every step the methodology takes:
// domain creation, pre-test, submission, the 3-5 day wait, the retest, and
// the decision, including the per-URL evidence.
#include <cstdio>

#include "core/confirmer.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  core::Confirmer confirmer(paper.world(), paper.hosting(), paper.vendorSet());

  // The Etisalat/Anonymizers case study is the second chronologically.
  const auto& caseStudy = paper.caseStudies()[1];
  const auto& config = caseStudy.config;

  std::printf("case study: %s in %s (%s), category \"%s\"\n",
              std::string(filters::toString(config.product)).c_str(),
              config.ispName.c_str(), config.countryAlpha2.c_str(),
              config.categoryName.c_str());
  std::printf("plan: create %d fresh domains (%s), submit %d, wait %d days, "
              "retest\n\n",
              config.totalSites,
              std::string(simnet::toString(config.profile)).c_str(),
              config.sitesToSubmit, config.waitDays);

  scenarios::advanceClockTo(paper.world(), caseStudy.startDate);
  std::printf("clock: %s\n", paper.world().now().date().iso().c_str());

  const auto result = confirmer.run(config);

  std::printf("\npre-test: %d/%d sites accessible in-country before "
              "submission\n",
              result.pretestAccessibleCount, config.totalSites);

  std::printf("\nsubmitted to %s:\n",
              std::string(filters::vendorCompany(config.product)).c_str());
  for (const auto& url : result.submittedUrls)
    std::printf("  %s\n", url.c_str());
  std::printf("controls (not submitted):\n");
  for (const auto& url : result.controlUrls)
    std::printf("  %s\n", url.c_str());

  std::printf("\nretest on %s:\n", result.dateLabel.c_str());
  for (const auto& urlResult : result.finalResults) {
    std::printf("  %-42s %s", urlResult.url.c_str(),
                std::string(measure::toString(urlResult.verdict)).c_str());
    if (urlResult.blockPage)
      std::printf("  [block page: %s via %s]",
                  std::string(filters::toString(urlResult.blockPage->product))
                      .c_str(),
                  urlResult.blockPage->patternName.c_str());
    std::printf("\n");
  }

  std::printf("\nsubmitted blocked: %d/%zu   control blocked: %d/%zu\n",
              result.submittedBlocked, result.submittedUrls.size(),
              result.controlBlocked, result.controlUrls.size());
  std::printf("verdict: %s\n",
              result.confirmed
                  ? "CONFIRMED — the submissions triggered the blocking"
                  : "not confirmed");

  // Show the vendor-side paper trail too.
  std::printf("\nvendor submission log:\n");
  for (const auto& submission :
       paper.vendor(config.product).submissions()) {
    std::printf("  ticket %d: %s -> %s (%s)\n", submission.ticket,
                submission.url.toString().c_str(),
                submission.state == filters::Submission::State::kAccepted
                    ? "accepted"
                    : submission.state == filters::Submission::State::kRejected
                          ? "rejected"
                          : "pending",
                submission.note.c_str());
  }
  return result.confirmed ? 0 : 1;
}
