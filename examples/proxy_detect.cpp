// Netalyzr-style transparent-proxy detection (§7): probe a request-echo
// origin from every field vantage and diff both directions of the exchange
// against the lab's view. The §4 confirmations provide the ground truth the
// paper says this kind of tool needs.
#include <cstdio>

#include "core/proxy_detect.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  core::ProxyDetector detector(paper.world());

  std::printf("echo origin: %s\n\n", paper.echoUrl().c_str());

  const char* vantages[] = {"field-etisalat", "field-ooredoo", "field-du",
                            "field-yemennet", "field-bayanat",
                            "field-nournet"};
  for (const char* vantage : vantages) {
    const auto evidence =
        detector.detect(vantage, "lab-toronto", paper.echoUrl());
    std::printf("%-16s %s", vantage,
                evidence.proxyDetected() ? "TRANSPARENT PROXY DETECTED"
                                         : "no in-path proxy evidence");
    if (evidence.productHint)
      std::printf("  [product hint: %s]", evidence.productHint->c_str());
    std::printf("\n");
    for (const auto& header : evidence.addedResponseHeaders)
      std::printf("    response + %s\n", header.c_str());
    for (const auto& header : evidence.addedRequestHeaders)
      std::printf("    request  + %s\n", header.c_str());
  }

  std::printf(
      "\nNote the blind spot this tool has (and the paper's method does\n"
      "not): Du, YemenNet and the Saudi ISPs all censor, but their filters\n"
      "do not annotate forwarded traffic, so header-diffing sees nothing.\n");
  return 0;
}
