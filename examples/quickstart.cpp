// Quickstart: build a tiny simulated Internet by hand, deploy one URL
// filter, and run the paper's confirmation methodology (§4) against it.
//
// This is the smallest end-to-end use of the public API:
//   1. create a World with an ISP and a field vantage point,
//   2. stand up a vendor and a SmartFilter deployment that blocks the
//      "Anonymizers" category,
//   3. host fresh proxy domains, submit half to the vendor, wait, retest,
//   4. read off the confirmation verdict.
#include <cstdio>

#include "core/confirmer.h"
#include "filters/smartfilter.h"
#include "simnet/hosting.h"
#include "simnet/world.h"

int main() {
  using namespace urlf;

  // --- 1. A world with one censoring ISP and one hosting network.
  simnet::World world(/*seed=*/42);
  world.createAs(64512, "EXAMPLE-ISP", "Example Telecom", "SA",
                 {net::IpPrefix::parse("100.64.0.0/16").value()});
  world.createAs(64513, "EXAMPLE-HOSTING", "Example Hosting", "US",
                 {net::IpPrefix::parse("100.65.0.0/16").value()});
  auto& isp = world.createIsp("Example Telecom", "SA", {64512});

  world.createVantage("field", "SA", &isp);
  world.createVantage("lab", "CA", nullptr);

  // --- 2. Vendor + deployment blocking the Anonymizers category (id 2).
  filters::Vendor vendor(filters::ProductKind::kSmartFilter, world);
  filters::FilterPolicy policy;
  policy.blockedCategories = {2};
  auto& deployment = world.makeMiddlebox<filters::SmartFilterDeployment>(
      "Example SmartFilter", vendor, policy);
  deployment.installExternalSurfaces(world, 64512);
  isp.attachMiddlebox(deployment);

  // --- 3. Run the confirmation methodology.
  simnet::HostingProvider hosting(world, 64513);
  core::VendorSet vendors;
  vendors.add(vendor);
  core::Confirmer confirmer(world, hosting, vendors);

  core::CaseStudyConfig config;
  config.product = filters::ProductKind::kSmartFilter;
  config.countryAlpha2 = "SA";
  config.ispName = "Example Telecom";
  config.fieldVantage = "field";
  config.labVantage = "lab";
  config.categoryName = "Anonymizers";
  config.profile = simnet::ContentProfile::kGlypeProxy;
  config.totalSites = 6;
  config.sitesToSubmit = 3;
  config.waitDays = 5;

  const auto result = confirmer.run(config);

  // --- 4. The verdict.
  std::printf("submitted %s sites under \"%s\"\n",
              result.submittedRatio().c_str(), config.categoryName.c_str());
  std::printf("blocked after %d days: %s (attributed to the product: %d)\n",
              config.waitDays, result.blockedRatio().c_str(),
              result.attributedToProduct);
  std::printf("control sites blocked: %d\n", result.controlBlocked);
  std::printf("==> %s is %s used for censorship in %s\n",
              std::string(filters::toString(config.product)).c_str(),
              result.confirmed ? "CONFIRMED" : "not confirmed",
              config.ispName.c_str());
  return result.confirmed ? 0 : 1;
}
