// The §5 collect-first/analyze-later workflow end to end: record a
// measurement session with full wire traces, lose the pattern library,
// mine a block-page signature back out of the recorded traces, and verify
// the mined pattern classifies future block pages.
#include <cstdio>

#include "measure/mining.h"
#include "measure/session.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;
  using filters::ProductKind;

  scenarios::PaperWorld paper;
  auto& world = paper.world();
  measure::Client client(world, *world.findVantage("field-etisalat"),
                         *world.findVantage("lab-toronto"));

  // --- 1. Collect: run the global list and keep full traces.
  const auto session = client.testList(paper.globalList().urls());
  int blocked = 0;
  for (const auto& result : session)
    if (result.blocked()) ++blocked;
  std::printf("recorded session: %zu URLs, %d blocked\n", session.size(),
              blocked);

  const auto exported = measure::exportSession(session);
  std::printf("exported %zu bytes of wire traces\n\n", exported.size());

  // --- 2. Simulate an analyst with NO pattern library: re-import and
  //        reclassify with an empty library. Censorship is visible but
  //        unattributable.
  auto imported = measure::importSession(exported).value();
  const auto unattributed = measure::reclassify(imported, {});
  int blockedOther = 0;
  for (const auto& result : unattributed)
    if (result.verdict == measure::Verdict::kBlockedOther) ++blockedOther;
  std::printf("without patterns: %d blocked-but-unattributed URLs\n\n",
              blockedOther);

  // --- 3. Manual analysis, mechanized: mine the invariant core of the
  //        blocked traces.
  const auto mined = measure::minePatternFromResults(
      ProductKind::kSmartFilter, imported);
  if (!mined) {
    std::printf("no common core found\n");
    return 1;
  }
  std::printf("mined signature candidate (first 80 chars):\n  /%s/\n\n",
              mined->regex.substr(0, 80).c_str());

  // --- 4. Automated analysis: apply the mined pattern to the recorded
  //        session.
  const auto reattributed = measure::reclassify(imported, {*mined});
  int attributed = 0;
  for (const auto& result : reattributed)
    if (result.verdict == measure::Verdict::kBlocked) ++attributed;
  std::printf("with the mined pattern: %d URLs attributed to %s\n",
              attributed,
              std::string(filters::toString(mined->product)).c_str());

  // --- 5. And it generalizes to a page not in the training session.
  auto fresh = client.testUrl("http://uaeoppositionvoice.org/");
  const auto match = measure::classifyBlockPage(fresh.field, {*mined});
  std::printf("fresh block page (%s): %s\n", fresh.url.c_str(),
              match ? "matched by the mined pattern" : "NOT matched");
  return match ? 0 : 1;
}
