// The historical Yemen/Websense narrative (§2.2): an under-licensed
// Websense deployment blocks inconsistently; the methodology confirms it
// anyway; ONI's 2009 report leads Websense to withdraw update support [35];
// after the withdrawal, newly categorized sites are never blocked and the
// confirmation methodology correctly reports the change.
#include <cstdio>

#include "core/confirmer.h"
#include "measure/repeated.h"
#include "scenarios/yemen2009.h"

int main() {
  using namespace urlf;

  scenarios::Yemen2009 yemen;
  auto& world = yemen.world();

  // --- Act 1: inconsistent blocking (Challenge 2's origin story).
  const auto probe =
      yemen.hosting().createFreshDomain(simnet::ContentProfile::kGlypeProxy);
  yemen.websense().masterDb().addHost(
      probe.hostname, yemen.websense().scheme().byName("Proxy Avoidance")->id);

  measure::RepeatedTester tester(world, *world.findVantage("field-yemennet-2009"),
                                 *world.findVantage("lab-toronto"));
  const std::vector<std::string> urls{"http://" + probe.hostname + "/"};
  const auto stats = tester.run(urls, /*passes=*/12, /*hoursBetweenPasses=*/2);

  std::printf("act 1 — a categorized proxy site, observed over 24 hours:\n");
  std::printf("  blocked %d/%d passes (%.0f%%) -> %s\n", stats[0].blocked,
              stats[0].runs, 100.0 * stats[0].blockedFraction(),
              stats[0].inconsistent()
                  ? "INCONSISTENT blocking (license exhaustion at peak hours)"
                  : "consistent");

  // --- Act 2: confirmation despite the inconsistency.
  core::Confirmer confirmer(world, yemen.hosting(), yemen.vendorSet());
  const auto confirmation = confirmer.run(yemen.caseStudyConfig());
  std::printf("\nact 2 — the sec-4 methodology with repeated retests:\n");
  std::printf("  %s blocked -> %s\n", confirmation.blockedRatio().c_str(),
              confirmation.confirmed ? "Websense CONFIRMED in YemenNet"
                                     : "not confirmed");

  // --- Act 3: the policy impact.
  yemen.websenseWithdrawsSupport();
  std::printf("\nact 3 — Websense withdraws update support [35]...\n");
  const auto after = confirmer.run(yemen.caseStudyConfig());
  std::printf("  rerunning the methodology: %s blocked -> %s\n",
              after.blockedRatio().c_str(),
              after.confirmed
                  ? "still confirmed"
                  : "NOT confirmed — new submissions never reach the frozen "
                    "deployment");
  return 0;
}
