// Why the paper targets block-page products (§4.1): censorship by TCP
// reset, blackholing, or DNS tampering is visible to the measurement client
// but cannot be attributed to any vendor. This example builds one ISP with
// all three mechanisms plus a SmartFilter, and shows how each looks to the
// ONI-style client.
#include <cstdio>

#include "filters/smartfilter.h"
#include "measure/client.h"
#include "simnet/firewall.h"
#include "simnet/hosting.h"
#include "simnet/origin_server.h"

int main() {
  using namespace urlf;

  simnet::World world(1313);
  world.createAs(100, "MIXED-AS", "Mixed-censorship ISP", "IR",
                 {net::IpPrefix::parse("10.0.0.0/16").value()});
  world.createAs(200, "HOST-AS", "Hosting", "US",
                 {net::IpPrefix::parse("20.0.0.0/16").value()});
  auto& isp = world.createIsp("Mixed-censorship ISP", "IR", {100});
  auto& field = world.createVantage("field", "IR", &isp);
  auto& lab = world.createVantage("lab", "CA", nullptr);
  simnet::HostingProvider hosting(world, 200);

  // Mechanism 1: a URL filter with a block page.
  filters::Vendor vendor(filters::ProductKind::kSmartFilter, world);
  filters::FilterPolicy policy;
  policy.blockedCategories = {1};  // Pornography
  auto& smartFilter = world.makeMiddlebox<filters::SmartFilterDeployment>(
      "SF", vendor, policy);
  smartFilter.installExternalSurfaces(world, 100);
  isp.attachMiddlebox(smartFilter);

  // Mechanism 2: keyword RST injection.
  isp.attachMiddlebox(world.makeMiddlebox<simnet::KeywordResetFirewall>(
      "keyword-firewall", std::vector<std::string>{"opposition"}));

  // Mechanism 3: DNS tampering to a blackhole.
  const auto blockPageSite =
      hosting.createFreshDomain(simnet::ContentProfile::kAdultImage);
  vendor.masterDb().addHost(blockPageSite.hostname, 1);
  const auto rstSite = hosting.createDomain("oppositionvoice.org",
                                            simnet::ContentProfile::kNews);
  const auto dnsSite =
      hosting.createDomain("bannedforum.org", simnet::ContentProfile::kNews);
  isp.addDnsOverride("bannedforum.org", net::Ipv4Addr(10, 0, 99, 99));
  const auto openSite =
      hosting.createFreshDomain(simnet::ContentProfile::kBenign);

  measure::Client client(world, field, lab);
  struct Case {
    const char* label;
    std::string url;
  };
  const Case cases[] = {
      {"URL filter (block page)", "http://" + blockPageSite.hostname + "/"},
      {"keyword RST injection", "http://oppositionvoice.org/"},
      {"DNS blackholing", "http://bannedforum.org/"},
      {"uncensored control", "http://" + openSite.hostname + "/"},
  };

  std::printf("%-28s %-14s %s\n", "mechanism", "verdict", "attribution");
  std::printf("%-28s %-14s %s\n", "---------", "-------", "-----------");
  for (const auto& c : cases) {
    const auto result = client.testUrl(c.url);
    std::printf("%-28s %-14s %s\n", c.label,
                std::string(measure::toString(result.verdict)).c_str(),
                result.blockPage
                    ? std::string(filters::toString(result.blockPage->product))
                          .c_str()
                    : "(none)");
  }

  std::printf(
      "\nOnly the block-page mechanism yields a product attribution — the\n"
      "confirmation methodology (sec 4) is built on exactly that property.\n");
  return 0;
}
