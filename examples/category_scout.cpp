// Automated Challenge 1 (§4.3): before creating test sites, work out which
// vendor categories each ISP actually enforces by probing reference sites
// of known categorization — then feed the enforced category straight into
// the §4 confirmation methodology.
#include <cstdio>

#include "core/confirmer.h"
#include "core/scout.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;
  using filters::ProductKind;

  scenarios::PaperWorld paper;
  core::CategoryScout scout(paper.world());

  struct Network {
    const char* vantage;
    const char* isp;
    const char* country;
  };
  const Network networks[] = {
      {"field-bayanat", "Bayanat Al-Oula", "SA"},
      {"field-etisalat", "Etisalat", "AE"},
  };

  for (const auto& network : networks) {
    std::printf("---- %s (%s): SmartFilter category scouting ----\n",
                network.isp, network.country);
    const auto uses =
        scout.scout(network.vantage, "lab-toronto",
                    paper.referenceSites(ProductKind::kSmartFilter));
    for (const auto& use : uses)
      std::printf("  %-14s %d/%d reference sites blocked -> %s\n",
                  use.categoryName.c_str(), use.blocked, use.tested,
                  use.inUse() ? "ENFORCED" : "not enforced");

    const auto category = core::CategoryScout::pickEnforcedCategory(
        uses, {"Anonymizers", "Pornography"});
    if (!category) {
      std::printf("  no enforced category found; skipping confirmation\n\n");
      continue;
    }
    std::printf("  chosen category for the experiment: %s\n",
                category->c_str());

    core::Confirmer confirmer(paper.world(), paper.hosting(),
                              paper.vendorSet());
    core::CaseStudyConfig config;
    config.product = ProductKind::kSmartFilter;
    config.ispName = network.isp;
    config.countryAlpha2 = network.country;
    config.fieldVantage = network.vantage;
    config.categoryName = *category;
    config.profile = *category == "Pornography"
                         ? simnet::ContentProfile::kAdultImage
                         : simnet::ContentProfile::kGlypeProxy;
    config.totalSites = 10;
    config.sitesToSubmit = 5;
    const auto result = confirmer.run(config);
    std::printf("  confirmation: %s blocked, %s\n\n",
                result.blockedRatio().c_str(),
                result.confirmed ? "CONFIRMED" : "not confirmed");
  }
  return 0;
}
