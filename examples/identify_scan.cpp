// Walkthrough of the §3 identification pipeline with verbose evidence:
// banner crawl -> Shodan-style keyword search -> WhatWeb-style validation ->
// MaxMind/whois mapping. Prints what each stage saw, including the decoy
// candidates that validation rejects.
#include <cstdio>
#include <set>

#include "core/identifier.h"
#include "net/cctld.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  auto& world = paper.world();

  // The scanner's view of the world: its own (imperfect) geolocation.
  const auto geo = world.buildGeoDatabase();
  const auto whois = world.buildAsnDatabase();

  std::printf("crawling externally visible surfaces...\n");
  scan::BannerIndex index;
  index.crawl(world, geo);
  std::printf("  %zu banners indexed\n\n", index.size());

  const auto engine = fingerprint::Engine::withBuiltinSignatures();
  core::Identifier identifier(world, index, engine, geo, whois);

  for (const auto product : filters::allProducts()) {
    std::printf("---- %s ----\n",
                std::string(filters::toString(product)).c_str());

    std::printf("keywords:");
    for (const auto& keyword : core::Identifier::shodanKeywords(product))
      std::printf(" \"%s\"", keyword.c_str());
    std::printf("\n");

    const auto candidates = identifier.locateCandidates(product);
    std::printf("step 1 (locate): %zu candidate banners\n", candidates.size());

    const auto installations = identifier.identify(product);
    std::printf("step 2+3 (validate, map): %zu validated installations\n",
                installations.size());

    std::set<std::uint32_t> validatedIps;
    for (const auto& inst : installations) {
      validatedIps.insert(inst.ip.value());
      const auto country = net::countryByAlpha2(inst.countryAlpha2);
      std::printf("  %s:%u  %s  %s  certainty %.2f\n",
                  inst.ip.toString().c_str(), inst.port,
                  country ? std::string(country->name).c_str()
                          : inst.countryAlpha2.c_str(),
                  inst.asn ? ("AS" + std::to_string(inst.asn->asn) + " " +
                              inst.asn->description)
                                 .c_str()
                           : "AS?",
                  inst.certainty);
      for (const auto& evidence : inst.evidence)
        std::printf("      evidence: %s\n", evidence.c_str());
    }

    // Candidates that did NOT validate: the keyword bait.
    int rejected = 0;
    for (const auto* candidate : candidates)
      if (!validatedIps.contains(candidate->ip.value())) ++rejected;
    if (rejected > 0)
      std::printf("  (%d keyword candidate(s) rejected by validation)\n",
                  rejected);
    std::printf("\n");
  }
  return 0;
}
