// §5 content characterization of one network with per-URL detail: runs the
// global + local URL lists from the YemenNet vantage point, classifies block
// pages, and prints the per-ONI-category tallies behind a Table 4 row.
#include <cstdio>

#include "core/characterizer.h"
#include "scenarios/paper_world.h"

int main() {
  using namespace urlf;

  scenarios::PaperWorld paper;
  auto& world = paper.world();
  scenarios::advanceClockTo(world, {2013, 4, 1});

  core::Characterizer characterizer(world);
  // Yemen blocks inconsistently (Challenge 2): 3 runs per URL.
  const auto result = characterizer.characterize(
      "field-yemennet", "lab-toronto", paper.globalList(),
      paper.localList("YE"), /*runs=*/3);

  std::printf("network: %s (%s)\n", result.ispName.c_str(),
              result.countryAlpha2.c_str());
  std::printf("attributed product: %s\n\n",
              result.attributedProduct
                  ? std::string(filters::toString(*result.attributedProduct))
                        .c_str()
                  : "(none)");

  std::printf("per-URL results:\n");
  for (const auto& urlResult : result.results) {
    std::printf("  %-38s %-12s", urlResult.url.c_str(),
                std::string(measure::toString(urlResult.verdict)).c_str());
    if (urlResult.blockPage)
      std::printf(" [%s]", urlResult.blockPage->patternName.c_str());
    std::printf("\n");
  }

  std::printf("\nper-category tallies:\n");
  for (const auto& [category, cell] : result.cells) {
    const auto oni = measure::oniCategoryByName(category);
    std::printf("  %-32s %-18s %d tested, %d blocked%s\n", category.c_str(),
                oni ? std::string(measure::toString(oni->theme)).c_str()
                    : "?",
                cell.tested, cell.blocked, cell.blocked > 0 ? "  <== censored"
                                                            : "");
  }
  return 0;
}
